// FaultScript: hostile network conditions as data, not code.
//
// A fault script is a timeline of scheduled fault events — crash/rejoin
// storms, graceful leaves, network partitions and heals, loss-rate changes,
// per-member lossy edges — applied to a Cluster at absolute simulation
// times through Cluster::schedule_script. Scripts are buildable
// programmatically (the fluent builders below) or parsed from a simple
// key=value event-per-line spec file, so a scenario binary can take its
// failure schedule from the command line (scenario_cli --fault-script).
//
// Spec grammar (one event per line; '#' starts a comment; blank lines are
// ignored; keys may appear in any order):
//
//   at=<time> event=<kind> [key=value ...]
//
//   <time>    unsigned integer with optional unit suffix: us, ms (default), s
//   <members> comma-separated member ids and inclusive ranges: 3,5,7-9
//   <groups>  member lists separated by '|': 0-5|6-11 (members in no group
//             form one implicit extra group, connected among themselves)
//
//   event=crash         members=<members>
//   event=rejoin        members=<members>
//   event=leave         members=<members>
//   event=partition     groups=<groups>
//   event=heal
//   event=data-loss     rate=<float> [members=<members>]   (default: all)
//   event=control-loss  rate=<float>
//   event=link-loss     members=<members> rate=<float> [src=<member>]
//
// data-loss changes the per-receiver loss of the listed senders' initial IP
// multicast; control-loss swaps the region-wide control/repair loss model;
// link-loss installs LinkLossTable overrides (every link into each listed
// member, or only the src -> member edge when src is given). All events run
// at script barriers, so a scripted run is deterministic at every shard
// count; a run with an empty script is bit-identical to an unscripted one.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace rrmp::harness {

class Cluster;

struct FaultEvent {
  enum class Kind {
    kCrash,
    kRejoin,
    kLeave,
    kPartition,
    kHeal,
    kDataLoss,
    kControlLoss,
    kLinkLoss,
  };

  TimePoint at;
  Kind kind = Kind::kHeal;
  /// crash/rejoin/leave/link-loss targets; data-loss sender scope (empty =
  /// every sender).
  std::vector<MemberId> members;
  /// partition groups.
  std::vector<std::vector<MemberId>> groups;
  /// data-loss / control-loss / link-loss rate.
  double rate = 0.0;
  /// link-loss: restrict the override to this sender's edges
  /// (kInvalidMember = every sender into each listed member).
  MemberId src = kInvalidMember;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

const char* fault_event_kind_name(FaultEvent::Kind kind);

class FaultScript {
 public:
  // Fluent programmatic builders; events keep insertion order (schedule_on
  // hands them to the cluster's script queue, which breaks time ties FIFO).
  FaultScript& crash(TimePoint at, std::vector<MemberId> members);
  FaultScript& rejoin(TimePoint at, std::vector<MemberId> members);
  FaultScript& leave(TimePoint at, std::vector<MemberId> members);
  FaultScript& partition(TimePoint at,
                         std::vector<std::vector<MemberId>> groups);
  FaultScript& heal(TimePoint at);
  /// Empty `senders` = every sender.
  FaultScript& data_loss(TimePoint at, double rate,
                         std::vector<MemberId> senders = {});
  FaultScript& control_loss(TimePoint at, double rate);
  FaultScript& link_loss(TimePoint at, std::vector<MemberId> members,
                         double rate, MemberId src = kInvalidMember);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Schedule every event on `cluster` (Cluster::schedule_script at the
  /// event's absolute time). Validates member/region ids against the
  /// cluster size first and throws std::invalid_argument on a bad id, so a
  /// typo fails loudly at schedule time instead of mid-run.
  void schedule_on(Cluster& cluster) const;

  /// Parse the key=value spec. On failure returns std::nullopt and, when
  /// `error` is non-null, a "line N: reason" message.
  static std::optional<FaultScript> parse(std::string_view text,
                                          std::string* error = nullptr);
  /// parse() on a file's contents (error covers unreadable files too).
  static std::optional<FaultScript> parse_file(const std::string& path,
                                               std::string* error = nullptr);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace rrmp::harness
