#include "harness/udp_runtime.h"

#include "common/logging.h"
#include "proto/codec.h"

namespace rrmp::harness {

class UdpRuntime::MemberHost final : public IHost {
 public:
  MemberHost(MemberId self, UdpRuntime& rt, RandomEngine rng)
      : self_(self),
        region_(rt.topology_.region_of(self)),
        rt_(rt),
        rng_(std::move(rng)),
        local_view_(rt.directory_.region_view(region_)),
        parent_view_(rt.directory_.parent_view(region_)) {}

  MemberId self() const override { return self_; }
  RegionId region() const override { return region_; }
  TimePoint now() const override { return rt_.bus_->now(); }

  TimerHandle schedule(Duration d, std::function<void()> fn) override {
    return rt_.bus_->schedule_after(d, std::move(fn));
  }
  void cancel(TimerHandle timer) override { rt_.bus_->cancel(timer); }

  void send(MemberId to, proto::Message msg) override {
    rt_.bus_->send(self_, to, proto::encode(msg));
  }

  void multicast_region(proto::Message msg) override {
    std::vector<std::uint8_t> bytes = proto::encode(msg);
    for (MemberId m : rt_.topology_.members_of(region_)) {
      if (m != self_) rt_.bus_->send(self_, m, bytes);
    }
  }

  void ip_multicast(proto::Message msg) override {
    std::vector<std::uint8_t> bytes = proto::encode(msg);
    for (MemberId m = 0; m < rt_.topology_.member_count(); ++m) {
      if (m == self_) continue;
      if (rng_.bernoulli(rt_.config_.data_loss)) continue;
      rt_.bus_->send(self_, m, bytes);
    }
  }

  RandomEngine& rng() override { return rng_; }

  const membership::RegionView& local_view() const override {
    return local_view_;
  }
  const membership::RegionView& parent_view() const override {
    return parent_view_;
  }

  Duration rtt_estimate(MemberId peer) const override {
    if (rt_.config_.emulate_latency) return rt_.topology_.rtt(self_, peer);
    // Raw loopback: sub-millisecond; a small floor keeps retries sane.
    return Duration::millis(2);
  }

 private:
  MemberId self_;
  RegionId region_;
  UdpRuntime& rt_;
  RandomEngine rng_;
  membership::RegionView local_view_;
  membership::RegionView parent_view_;
};

UdpRuntime::UdpRuntime(const net::Topology& topology, UdpRuntimeConfig config)
    : topology_(topology), config_(std::move(config)), directory_(topology) {
  bus_ = std::make_unique<net::UdpBus>(topology.member_count(),
                                       config_.base_port);
  if (config_.emulate_latency) {
    bus_->set_delay_fn([this](MemberId from, MemberId to) {
      return topology_.one_way_latency(from, to);
    });
  }
  RandomEngine master(config_.seed);
  hosts_.reserve(topology.member_count());
  endpoints_.reserve(topology.member_count());
  for (MemberId m = 0; m < topology.member_count(); ++m) {
    hosts_.push_back(
        std::make_unique<MemberHost>(m, *this, master.fork(m + 1)));
    auto policy = buffer::make_policy(config_.policy);
    endpoints_.push_back(std::make_unique<Endpoint>(
        *hosts_.back(), config_.protocol, std::move(policy), &metrics_));
  }
  bus_->set_receive_callback([this](MemberId to, MemberId from,
                                    std::span<const std::uint8_t> bytes) {
    std::optional<proto::Message> msg = proto::decode(bytes);
    if (!msg) {
      log::warn("UdpRuntime: dropping undecodable datagram (", bytes.size(),
                " bytes)");
      return;
    }
    endpoints_.at(to)->handle_message(*msg, from);
  });
}

UdpRuntime::~UdpRuntime() {
  // Halt endpoints first so no timer callback outlives them.
  for (auto& ep : endpoints_) {
    if (ep) ep->halt();
  }
}

void UdpRuntime::run_for(Duration d) { bus_->run_until(bus_->now() + d); }

bool UdpRuntime::all_received(const MessageId& id) const {
  for (const auto& ep : endpoints_) {
    if (!ep->has_received(id)) return false;
  }
  return true;
}

std::size_t UdpRuntime::count_received(const MessageId& id) const {
  std::size_t n = 0;
  for (const auto& ep : endpoints_) {
    if (ep->has_received(id)) ++n;
  }
  return n;
}

}  // namespace rrmp::harness
