#include "harness/udp_runtime.h"

#include <chrono>

#include "common/logging.h"
#include "proto/codec.h"

namespace rrmp::harness {

class UdpRuntime::MemberHost final : public IHost {
 public:
  MemberHost(MemberId self, UdpRuntime& rt, net::UdpBus& bus,
             RandomEngine rng)
      : self_(self),
        region_(rt.topology_.region_of(self)),
        rt_(rt),
        bus_(bus),
        rng_(std::move(rng)),
        local_view_(rt.directory_.region_view(region_)),
        parent_view_(rt.directory_.parent_view(region_)) {}

  MemberId self() const override { return self_; }
  RegionId region() const override { return region_; }
  TimePoint now() const override { return bus_.now(); }

  TimerHandle schedule(Duration d, std::function<void()> fn) override {
    return bus_.schedule_after(d, std::move(fn));
  }
  void cancel(TimerHandle timer) override { bus_.cancel(timer); }

  void send(MemberId to, proto::Message msg) override {
    bus_.send(self_, to, proto::encode(msg));
  }

  void multicast_region(proto::Message msg) override {
    // Encode once; the fan-out enqueues refcounted views of one wire image.
    SharedBytes wire(proto::encode(msg));
    for (MemberId m : rt_.topology_.members_of(region_)) {
      if (m != self_) bus_.send_shared(self_, m, wire);
    }
  }

  void ip_multicast(proto::Message msg) override {
    SharedBytes wire(proto::encode(msg));
    const auto* data = std::get_if<proto::Data>(&msg);
    for (MemberId m = 0; m < rt_.topology_.member_count(); ++m) {
      if (m == self_) continue;
      bool lost;
      if (rt_.config_.drop_fn && data != nullptr) {
        lost = rt_.config_.drop_fn(data->id.seq, m);
      } else {
        lost = rng_.bernoulli(rt_.config_.data_loss);
      }
      if (lost) continue;
      bus_.send_shared(self_, m, wire);
    }
  }

  RandomEngine& rng() override { return rng_; }

  const membership::RegionView& local_view() const override {
    return local_view_;
  }
  const membership::RegionView& parent_view() const override {
    return parent_view_;
  }

  Duration rtt_estimate(MemberId peer) const override {
    if (rt_.config_.emulate_latency) return rt_.topology_.rtt(self_, peer);
    // Raw loopback: sub-millisecond; a small floor keeps retries sane.
    return Duration::millis(2);
  }

 private:
  MemberId self_;
  RegionId region_;
  UdpRuntime& rt_;
  net::UdpBus& bus_;
  RandomEngine rng_;
  membership::RegionView local_view_;
  membership::RegionView parent_view_;
};

UdpRuntime::UdpRuntime(const net::Topology& topology, UdpRuntimeConfig config)
    : topology_(topology), config_(std::move(config)), directory_(topology) {
  const std::size_t n = topology.member_count();
  std::size_t workers = ShardPool::resolve(config_.workers, n);
  chunk_ = (n + workers - 1) / workers;
  workers = (n + chunk_ - 1) / chunk_;

  // All worker buses share one clock epoch so their TimePoints agree.
  std::int64_t epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  for (std::size_t w = 0; w < workers; ++w) {
    net::UdpBusConfig bc = config_.bus;
    bc.first_member = w * chunk_;
    bc.owned_count = std::min(chunk_, n - w * chunk_);
    bc.epoch_ns = epoch;
    buses_.push_back(std::make_unique<net::UdpBus>(n, config_.base_port, bc));
    sinks_.push_back(std::make_unique<RecordingSink>());
  }
  pool_ = std::make_unique<ShardPool>(workers - 1);

  RandomEngine master(config_.seed);
  hosts_.reserve(n);
  endpoints_.reserve(n);
  for (MemberId m = 0; m < n; ++m) {
    net::UdpBus& bus = *buses_[worker_of(m)];
    RecordingSink& sink = *sinks_[worker_of(m)];
    hosts_.push_back(
        std::make_unique<MemberHost>(m, *this, bus, master.fork(m + 1)));
    auto policy = buffer::make_policy(config_.policy);
    endpoints_.push_back(std::make_unique<Endpoint>(
        *hosts_.back(), config_.protocol, std::move(policy), &sink));
  }
  for (auto& bus : buses_) {
    if (config_.emulate_latency) {
      bus->set_delay_fn([this](MemberId from, MemberId to) {
        return topology_.one_way_latency(from, to);
      });
    }
    bus->set_receive_callback(
        [this](MemberId to, MemberId from, SharedBytes bytes) {
          // decode_shared keeps payload blobs aliasing the segment-ring
          // slot `bytes` points into — zero-copy from kernel to buffer.
          std::optional<proto::Message> msg = proto::decode_shared(bytes);
          if (!msg) {
            log::warn("UdpRuntime: dropping undecodable datagram (",
                      bytes.size(), " bytes)");
            return;
          }
          endpoints_.at(to)->handle_message(*msg, from);
        });
  }
}

UdpRuntime::~UdpRuntime() {
  // Halt endpoints first so no timer callback outlives them.
  for (auto& ep : endpoints_) {
    if (ep) ep->halt();
  }
}

RecordingSink& UdpRuntime::metrics() {
  if (sinks_.size() == 1) return *sinks_[0];
  std::vector<const RecordingSink*> parts;
  parts.reserve(sinks_.size());
  for (const auto& s : sinks_) parts.push_back(s.get());
  merged_ = RecordingSink::merge(parts);
  return merged_;
}

std::uint64_t UdpRuntime::datagrams_sent() const {
  std::uint64_t total = 0;
  for (const auto& b : buses_) total += b->datagrams_sent();
  return total;
}

std::uint64_t UdpRuntime::datagrams_received() const {
  std::uint64_t total = 0;
  for (const auto& b : buses_) total += b->datagrams_received();
  return total;
}

void UdpRuntime::run_for(Duration d) {
  TimePoint deadline = buses_[0]->now() + d;
  if (buses_.size() == 1) {
    buses_[0]->run_until(deadline);
    return;
  }
  // One event loop per worker; each loop owns a disjoint member set and all
  // cross-worker traffic goes through the kernel, so no locking is needed.
  pool_->run(buses_.size(),
             [this, deadline](std::size_t w) { buses_[w]->run_until(deadline); });
}

bool UdpRuntime::all_received(const MessageId& id) const {
  for (const auto& ep : endpoints_) {
    if (!ep->has_received(id)) return false;
  }
  return true;
}

std::size_t UdpRuntime::count_received(const MessageId& id) const {
  std::size_t n = 0;
  for (const auto& ep : endpoints_) {
    if (ep->has_received(id)) ++n;
  }
  return n;
}

}  // namespace rrmp::harness
