// Cluster: a full RRMP deployment on the discrete-event simulator — the
// scenario surface shared by tests, benches and examples.
//
// Builds topology, directory, network, one SimHost + Endpoint per member,
// wires every endpoint to a shared RecordingSink, and offers scenario
// controls: scripted initial-multicast outcomes (who holds a message at
// t=0, as in Figures 6/7), graceful leaves, crashes, rejoins, and buffer
// state preparation for the search experiments (Figures 8/9).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "buffer/factory.h"
#include "harness/sim_host.h"
#include "membership/directory.h"
#include "net/sim_network.h"
#include "rrmp/endpoint.h"
#include "rrmp/metrics.h"
#include "sim/simulator.h"

namespace rrmp::harness {

struct ClusterConfig {
  /// region_sizes[i] members in region i; region 0 is the root, others
  /// parent on `parents` (default: all on region 0).
  std::vector<std::size_t> region_sizes = {16};
  std::vector<RegionId> parents;

  Duration intra_rtt = Duration::millis(10);
  Duration inter_one_way = Duration::millis(50);

  Config protocol;
  buffer::PolicyKind policy = buffer::PolicyKind::kTwoPhase;
  buffer::PolicyParams policy_params;

  std::uint64_t seed = 1;
  /// Per-receiver loss of the sender's initial IP multicast.
  double data_loss = 0.0;
  /// Loss applied to unicast + regional multicast (0 in the paper's runs).
  double control_loss = 0.0;
  /// Latency jitter fraction (latency *= U(1, 1+jitter)).
  double jitter = 0.0;
  /// Encode+decode every in-flight message (wire-format fidelity).
  bool codec_roundtrip = false;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::SimNetwork& network() { return *network_; }
  const net::Topology& topology() const { return topology_; }
  membership::Directory& directory() { return directory_; }
  Endpoint& endpoint(MemberId m) { return *endpoints_.at(m); }
  const Endpoint& endpoint(MemberId m) const { return *endpoints_.at(m); }
  SimHost& host(MemberId m) { return *hosts_.at(m); }
  RecordingSink& metrics() { return metrics_; }
  std::size_t size() const { return endpoints_.size(); }
  const ClusterConfig& config() const { return config_; }

  // ---- time control ----------------------------------------------------

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }
  /// Run until the event queue drains or `cap` of simulated time elapses.
  void run_until_quiet(Duration cap);

  // ---- scenario control --------------------------------------------------

  /// Scripted initial-multicast outcome: `holders` receive Data{source,seq}
  /// now; every other alive member of `notified` regions receives a Session
  /// announcing seq, so they detect the loss immediately (Figures 6/7).
  /// Returns the message id.
  MessageId inject(MemberId source, std::uint64_t seq,
                   std::span<const MemberId> holders,
                   std::size_t payload_bytes = 64);

  /// Deliver Data{source,seq} to exactly `holders`, notifying nobody else.
  MessageId inject_data_to(MemberId source, std::uint64_t seq,
                           std::span<const MemberId> holders,
                           std::size_t payload_bytes = 64);

  /// Deliver Session{source,seq} to exactly `members` (loss notification).
  void inject_session_to(MemberId source, std::uint64_t seq,
                         std::span<const MemberId> members);

  /// Deliver a remote request for `id` (from `requester`) to `target` now.
  void inject_remote_request(MemberId target, const MessageId& id,
                             MemberId requester);

  /// Force `member`'s buffered copy of `id` into the long-term phase.
  void force_long_term(MemberId member, const MessageId& id);
  /// Force-discard `member`'s buffered copy of `id`.
  void force_discard(MemberId member, const MessageId& id);

  void leave(MemberId m);   // graceful: handoff, then detach
  void crash(MemberId m);   // no handoff
  void rejoin(MemberId m);  // fresh endpoint for a previously-removed member

  // ---- queries -----------------------------------------------------------

  std::size_t count_received(const MessageId& id) const;
  std::size_t count_buffered(const MessageId& id) const;
  std::size_t count_long_term(const MessageId& id) const;
  /// True iff every *alive* member has received `id`.
  bool all_received(const MessageId& id) const;
  std::vector<MemberId> region_members(RegionId r) const;
  /// Sum of buffered message counts over alive members.
  std::size_t total_buffered() const;

 private:
  void spawn_member(MemberId m);

  ClusterConfig config_;
  sim::Simulator sim_;
  net::Topology topology_;
  membership::Directory directory_;
  std::unique_ptr<net::SimNetwork> network_;
  RecordingSink metrics_;
  RandomEngine master_rng_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<bool> removed_;
};

}  // namespace rrmp::harness
