// Cluster: a full RRMP deployment on the discrete-event simulator — the
// scenario surface shared by tests, benches and examples.
//
// Builds topology, directory, network, one SimHost + Endpoint per member,
// wires every endpoint to its region's RecordingSink, and offers scenario
// controls: scripted initial-multicast outcomes (who holds a message at
// t=0, as in Figures 6/7), graceful leaves, crashes, rejoins, and buffer
// state preparation for the search experiments (Figures 8/9).
//
// Sharded execution model: the network partitions the cluster into one lane
// per region (see net::SimNetwork), each with a private event queue, RNG
// fork and metrics sink. run_for()/run_until_quiet() advance the lanes in
// epoch windows no longer than the cross-region lookahead (the minimum
// inter-region one-way latency); at each window's end barrier the lanes'
// cross-region outboxes are exchanged in fixed lane order and due scripted
// events run single-threaded. Within a window lanes share no mutable state,
// so ClusterConfig::shards only chooses how many worker threads execute the
// per-window lane loop — results are byte-identical for every shard count.
// Single-region clusters collapse to one lane and behave exactly like the
// pre-sharding harness.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "buffer/factory.h"
#include "common/arena.h"
#include "harness/shard_pool.h"
#include "harness/sim_host.h"
#include "membership/directory.h"
#include "net/sim_network.h"
#include "rrmp/endpoint.h"
#include "rrmp/metrics.h"
#include "sim/simulator.h"

namespace rrmp::harness {

struct ClusterConfig {
  /// region_sizes[i] members in region i; region 0 is the root, others
  /// parent on `parents` (default: all on region 0).
  std::vector<std::size_t> region_sizes = {16};
  std::vector<RegionId> parents;

  Duration intra_rtt = Duration::millis(10);
  Duration inter_one_way = Duration::millis(50);

  Config protocol;
  /// Self-describing buffer policy selection + knobs (Buffer API v2). The
  /// per-member budget rides in protocol.buffer_budget.
  buffer::PolicySpec policy = buffer::TwoPhaseParams{};

  std::uint64_t seed = 1;
  /// Per-receiver loss of the sender's initial IP multicast.
  double data_loss = 0.0;
  /// Loss applied to unicast + regional multicast (0 in the paper's runs).
  double control_loss = 0.0;
  /// Latency jitter fraction (latency *= U(1, 1+jitter)).
  double jitter = 0.0;
  /// Encode+decode every in-flight message (wire-format fidelity).
  bool codec_roundtrip = false;

  /// Worker threads for the per-epoch region loop. 1 = sequential (default),
  /// 0 = hardware concurrency; always clamped to the region-lane count.
  /// Determinism contract: results are byte-identical for every value.
  std::size_t shards = 1;

  /// Sub-shard regions larger than this many members into consecutive-member
  /// chunk lanes (see net::SimNetwork); 0 (default) keeps one lane per
  /// region and is bit-identical to the pre-sub-sharding harness.
  std::size_t sub_shard_members = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  net::SimNetwork& network() { return *network_; }
  const net::Topology& topology() const { return topology_; }
  membership::Directory& directory() { return directory_; }
  Endpoint& endpoint(MemberId m) { return *endpoints_.at(m); }
  const Endpoint& endpoint(MemberId m) const { return *endpoints_.at(m); }
  SimHost& host(MemberId m) { return *hosts_.at(m); }
  std::size_t size() const { return endpoints_.size(); }
  const ClusterConfig& config() const { return config_; }

  /// Merged metrics across all region sinks (see RecordingSink::merge),
  /// cached by sink revision. On multi-lane clusters the result is a
  /// *snapshot* that refreshes only when metrics() is called again — re-call
  /// it after each run rather than holding the reference across runs.
  /// (Single-lane clusters return the sole live region sink directly.)
  /// Const: mutating the merged snapshot (e.g. clear()) could never reach
  /// the underlying per-region sinks and would silently un-do on refresh.
  const RecordingSink& metrics();

  // ---- time control ----------------------------------------------------

  /// Global simulation clock: the last epoch barrier every lane has reached.
  TimePoint now() const;

  void run_for(Duration d);
  /// Run until every lane queue drains or `cap` of simulated time elapses.
  void run_until_quiet(Duration cap);

  /// Scripted cluster-level event: `fn` runs single-threaded at the epoch
  /// barrier at time `t` (clamped to now()), after all lanes have reached
  /// `t` and cross-region traffic due by `t` has been exchanged. Scripts may
  /// touch any member, region or the cluster itself (leave/crash/rejoin,
  /// injections, sampling) — the barrier guarantees no lane is running.
  void schedule_script(TimePoint t, std::function<void()> fn);
  void schedule_script_after(Duration d, std::function<void()> fn) {
    schedule_script(now() + d, std::move(fn));
  }

  /// Worker threads actually backing the epoch loop (after clamping).
  std::size_t shard_count() const { return pool_->thread_count(); }
  /// Region lanes (1 for single-region clusters).
  std::size_t lane_count() const { return network_->lane_count(); }
  /// Total simulator events fired across all lanes (determinism witness).
  std::uint64_t events_fired() const { return network_->events_fired(); }

  // ---- scenario control --------------------------------------------------

  /// Scripted initial-multicast outcome: `holders` receive Data{source,seq}
  /// now; every other alive member of `notified` regions receives a Session
  /// announcing seq, so they detect the loss immediately (Figures 6/7).
  /// Returns the message id.
  MessageId inject(MemberId source, std::uint64_t seq,
                   std::span<const MemberId> holders,
                   std::size_t payload_bytes = 64);

  /// Deliver Data{source,seq} to exactly `holders`, notifying nobody else.
  MessageId inject_data_to(MemberId source, std::uint64_t seq,
                           std::span<const MemberId> holders,
                           std::size_t payload_bytes = 64);

  /// Deliver Session{source,seq} to exactly `members` (loss notification).
  void inject_session_to(MemberId source, std::uint64_t seq,
                         std::span<const MemberId> members);

  /// Deliver a remote request for `id` (from `requester`) to `target` now.
  void inject_remote_request(MemberId target, const MessageId& id,
                             MemberId requester);

  /// Force `member`'s buffered copy of `id` into the long-term phase.
  void force_long_term(MemberId member, const MessageId& id);
  /// Force-discard `member`'s buffered copy of `id`.
  void force_discard(MemberId member, const MessageId& id);

  void leave(MemberId m);   // graceful: handoff, then detach
  void crash(MemberId m);   // no handoff
  void rejoin(MemberId m);  // fresh endpoint for a previously-removed member

  // ---- fault injection ---------------------------------------------------
  //
  // Everything here is inert until first used: a run that never partitions
  // and never installs loss overrides is bit-identical to one built before
  // these primitives existed. All of it must run at script barriers (use
  // schedule_script, or call before run_for).

  /// Sever all traffic between the listed member groups (members in no
  /// group form one implicit extra group, connected among themselves).
  /// Packets already in flight still deliver; membership views are
  /// untouched — a partitioned peer is alive-but-unreachable, which is
  /// exactly the state the credit/digest hardening exists for. Bumps the
  /// connectivity generation and notifies every alive endpoint.
  void partition(const std::vector<std::vector<MemberId>>& groups);
  /// Convenience: partition whole regions instead of member sets.
  void partition_regions(const std::vector<std::vector<RegionId>>& groups);
  /// Restore full connectivity. Bumps the generation again, so credit
  /// state from *either* side of the former partition is stale afterwards.
  void heal();
  bool partitioned() const { return network_->partitioned(); }
  /// Connectivity generation: 0 until the first partition, then bumped by
  /// every partition() / heal().
  std::uint64_t fault_generation() const { return fault_generation_; }

  /// Loss-rate overrides (applied immediately; also inherited by future
  /// rejoins where applicable).
  void set_data_loss(double rate);                   // every sender
  void set_member_data_loss(MemberId m, double rate);  // one sender
  void set_control_loss(double rate);
  /// Per-link overrides on the control plane + repair path: every link
  /// *into* each of `members` drops with `rate` (a lossy edge receiver).
  void set_lossy_members(const std::vector<MemberId>& members, double rate);
  /// One directed link src -> dst.
  void set_link_loss(MemberId src, MemberId dst, double rate);

  // ---- queries -----------------------------------------------------------

  std::size_t count_received(const MessageId& id) const;
  std::size_t count_buffered(const MessageId& id) const;
  std::size_t count_long_term(const MessageId& id) const;
  /// True iff every *alive* member has received `id`.
  bool all_received(const MessageId& id) const;
  std::vector<MemberId> region_members(RegionId r) const;
  /// Sum of buffered message counts over alive members.
  std::size_t total_buffered() const;

 private:
  struct Script {
    TimePoint at;
    std::uint64_t seq;  // FIFO among same-time scripts
    std::function<void()> fn;
  };
  struct ScriptLater {
    bool operator()(const Script& a, const Script& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void spawn_member(MemberId m);
  /// Tell every alive endpoint the view changed (leave/crash/rejoin), so
  /// flow-control credit state reconciles at churn time, not at the next
  /// credit tick. Runs at a script barrier: deterministic for any shards.
  void notify_view_change();
  /// Tell every alive endpoint which region peers an active partition
  /// severs it from, with the current connectivity generation.
  void notify_partition_change();
  /// Advance every lane to `t` (worker pool), exchange cross-region traffic,
  /// and settle arrivals landing exactly at `t`.
  void advance_lanes_to(TimePoint t);
  void run_due_scripts();
  TimePoint next_script_time() const;

  ClusterConfig config_;
  net::Topology topology_;
  membership::Directory directory_;
  std::unique_ptr<net::SimNetwork> network_;
  RandomEngine master_rng_;
  std::unique_ptr<ShardPool> pool_;
  // One sink per lane (endpoints hold pointers: sized once, never resized),
  // plus the merged view handed out by metrics().
  std::vector<RecordingSink> lane_sinks_;
  RecordingSink merged_metrics_;
  std::vector<std::uint64_t> merged_revisions_;  // cache key for merged_metrics_
  // Hosts and endpoints live in the arena: at 10^6 members, two million
  // individual heap allocations dominate construction/teardown, and arena
  // locality keeps a region's endpoint state on neighbouring pages. Rejoin
  // replaces the objects (destroy + create); the dead slots leak until the
  // cluster dies, bounded by churn volume.
  common::Arena arena_;
  std::vector<SimHost*> hosts_;
  std::vector<Endpoint*> endpoints_;
  std::vector<bool> removed_;
  std::vector<Script> scripts_;  // min-heap via ScriptLater
  std::uint64_t next_script_seq_ = 1;
  TimePoint clock_;  // last barrier every lane has reached
  // Fault injection: the master link-loss table (lanes hold clones) and the
  // connectivity generation bumped at every partition()/heal().
  net::LinkLossTable link_loss_;
  std::uint64_t fault_generation_ = 0;
};

}  // namespace rrmp::harness
