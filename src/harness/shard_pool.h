// ShardPool: a reusable worker-thread pool for running the per-region lanes
// of a sharded cluster epoch in parallel.
//
// Determinism contract: the pool only ever runs *independent* tasks — each
// task owns disjoint state (one region lane) — and the caller merges results
// in fixed task-index order after run() returns. Task->thread assignment is
// dynamic (an atomic cursor), so which worker executes a task is scheduling
// noise, but since tasks share nothing and the merge order is fixed, results
// are byte-identical for every thread count, including 1.
//
// run() is a full barrier: it returns only after every task has finished.
// The first exception thrown by a task is captured and rethrown on the
// caller's thread after the barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rrmp::harness {

class ShardPool {
 public:
  /// A pool with `threads` workers. 0 and 1 both mean "inline": run() executes
  /// tasks on the calling thread and no workers are spawned.
  explicit ShardPool(std::size_t threads);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Execute task(0) .. task(count-1), blocking until all complete.
  /// Tasks must touch disjoint state. Not reentrant.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Execution streams per run(): the dedicated workers plus the calling
  /// thread, which always participates (1 when running inline).
  std::size_t thread_count() const {
    return workers_.empty() ? 1 : workers_.size() + 1;
  }

  /// Resolve a user-facing --shards value: 0 = hardware concurrency; the
  /// result is clamped to [1, max_useful] (no point in more workers than
  /// independent tasks).
  static std::size_t resolve(std::size_t requested, std::size_t max_useful);

 private:
  void worker_loop();
  void drain_tasks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;   // bumped per run() to wake workers
  std::size_t task_count_ = 0;
  std::size_t workers_busy_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::atomic<std::size_t> next_task_{0};
  std::exception_ptr first_error_;
};

}  // namespace rrmp::harness
