#include "harness/experiments.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "analysis/stats.h"
#include "harness/cluster.h"
#include "harness/fault_script.h"
#include "harness/shard_pool.h"

namespace rrmp::harness {
namespace {

ClusterConfig base_config(const ExperimentDefaults& d) {
  ClusterConfig cc;
  cc.intra_rtt = d.intra_rtt;
  cc.policy = buffer::TwoPhaseParams{d.idle_threshold, d.C};
  return cc;
}

/// Per-policy spec for the comparison sweeps, derived from the paper
/// defaults the same way the old PolicyParams union was.
buffer::PolicySpec spec_for(buffer::PolicyKind kind,
                            const ExperimentDefaults& d) {
  switch (kind) {
    case buffer::PolicyKind::kTwoPhase:
      return buffer::TwoPhaseParams{d.idle_threshold, d.C};
    case buffer::PolicyKind::kFixedTime:
      return buffer::FixedTimeParams{Duration::millis(100)};
    case buffer::PolicyKind::kBufferEverything:
      return buffer::BufferEverythingParams{};
    case buffer::PolicyKind::kHashBased:
      return buffer::HashBasedParams{static_cast<std::size_t>(d.C),
                                     d.idle_threshold};
    case buffer::PolicyKind::kStability: return buffer::StabilityParams{};
  }
  return buffer::TwoPhaseParams{d.idle_threshold, d.C};
}

std::vector<MemberId> pick_members(const std::vector<MemberId>& pool,
                                   std::size_t k, RandomEngine& rng) {
  std::vector<std::size_t> idx = rng.sample_indices(pool.size(), k);
  std::vector<MemberId> out;
  out.reserve(k);
  for (std::size_t i : idx) out.push_back(pool[i]);
  return out;
}

}  // namespace

// ------------------------------------------------------------- Figure 6 ----

Fig6Result run_fig6_point(std::size_t initial_holders, std::size_t region_size,
                          std::size_t trials, std::uint64_t seed,
                          const ExperimentDefaults& defaults) {
  std::vector<double> samples;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ClusterConfig cc = base_config(defaults);
    cc.region_sizes = {region_size};
    cc.seed = seed + trial * 7919;
    Cluster cluster(cc);

    RandomEngine pick_rng(seed ^ (trial * 0x9E3779B97F4A7C15ULL));
    std::vector<MemberId> holders =
        pick_members(cluster.region_members(0), initial_holders, pick_rng);
    MessageId id = cluster.inject(holders[0], 1, holders);
    cluster.run_until_quiet(Duration::seconds(2));

    // A holder's buffering time ends at its idle decision: either the
    // discard or the promotion to long-term (both happen at
    // last_activity + T).
    std::map<MemberId, TimePoint> closed;
    for (const auto& ev : cluster.metrics().discards()) {
      if (ev.id == id) closed.try_emplace(ev.member, ev.at);
    }
    for (const auto& ev : cluster.metrics().promotions()) {
      if (ev.id == id) {
        auto [it, inserted] = closed.try_emplace(ev.member, ev.at);
        if (!inserted && ev.at < it->second) it->second = ev.at;
      }
    }
    for (MemberId h : holders) {
      auto it = closed.find(h);
      if (it != closed.end()) samples.push_back(it->second.ms());
    }
  }
  Fig6Result r;
  r.initial_holders = initial_holders;
  r.mean_buffer_ms = analysis::mean(samples);
  r.samples = samples.size();
  return r;
}

// ------------------------------------------------------------- Figure 7 ----

Fig7Series run_fig7(std::size_t region_size, std::uint64_t seed,
                    Duration horizon, Duration sample_every,
                    const ExperimentDefaults& defaults) {
  ClusterConfig cc = base_config(defaults);
  cc.region_sizes = {region_size};
  cc.seed = seed;
  Cluster cluster(cc);

  std::vector<MemberId> holders = {cluster.region_members(0)[0]};
  MessageId id = cluster.inject(holders[0], 1, holders);
  cluster.run_for(horizon);

  Fig7Series s;
  const auto& m = cluster.metrics();
  for (TimePoint t = TimePoint::zero(); t <= TimePoint::zero() + horizon;
       t = t + sample_every) {
    std::size_t received = 0, stored = 0, discarded = 0;
    for (const auto& ev : m.deliveries()) {
      if (ev.id == id && ev.at <= t) ++received;
    }
    for (const auto& ev : m.stores()) {
      if (ev.id == id && ev.at <= t) ++stored;
    }
    for (const auto& ev : m.discards()) {
      if (ev.id == id && ev.at <= t) ++discarded;
    }
    s.t_ms.push_back(t.ms());
    s.received.push_back(received);
    s.buffered.push_back(stored - discarded);
  }
  return s;
}

// ---------------------------------------------------------- Figures 8/9 ----

SearchResult run_search_once(std::size_t region_size, std::size_t bufferers,
                             std::uint64_t seed,
                             const ExperimentDefaults& defaults) {
  ClusterConfig cc = base_config(defaults);
  cc.region_sizes = {region_size, 1};  // region 1: the downstream requester
  cc.seed = seed;
  Cluster cluster(cc);

  std::vector<MemberId> region0 = cluster.region_members(0);
  MemberId requester = cluster.region_members(1)[0];
  MessageId id =
      cluster.inject_data_to(region0[0], 1, region0);  // everyone received it

  RandomEngine rng(seed ^ 0xFEEDFACEULL);
  std::unordered_set<MemberId> keep;
  for (MemberId b : pick_members(region0, bufferers, rng)) keep.insert(b);
  for (MemberId m : region0) {
    if (keep.count(m)) {
      cluster.force_long_term(m, id);
    } else {
      cluster.force_discard(m, id);
    }
  }

  MemberId target = region0[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(region0.size()) - 1))];
  TimePoint t0 = cluster.now();
  cluster.inject_remote_request(target, id, requester);
  cluster.run_until_quiet(Duration::seconds(2));

  SearchResult r;
  TimePoint repaired = cluster.metrics().first_remote_repair(id);
  r.found = repaired != TimePoint::max();
  r.search_ms = r.found ? (repaired - t0).ms() : -1.0;
  return r;
}

double mean_search_ms(std::size_t region_size, std::size_t bufferers,
                      std::size_t trials, std::uint64_t seed,
                      const ExperimentDefaults& defaults) {
  // Trials are fully independent clusters, so they fan out across the shard
  // pool; collecting by trial index keeps the sample order — and the mean —
  // byte-identical for any shard count.
  std::vector<SearchResult> results(trials);
  ShardPool pool(ShardPool::resolve(defaults.shards, trials));
  pool.run(trials, [&](std::size_t t) {
    results[t] =
        run_search_once(region_size, bufferers, seed + t * 104729, defaults);
  });
  std::vector<double> xs;
  for (const SearchResult& r : results) {
    if (r.found) xs.push_back(r.search_ms);
  }
  return analysis::mean(xs);
}

// --------------------------------------------------------- Figures 3/4 ----

LongTermDistribution simulate_longterm_distribution(std::size_t region_size,
                                                    double C,
                                                    std::size_t trials,
                                                    std::uint64_t seed,
                                                    std::size_t max_k) {
  LongTermDistribution out;
  out.pmf.assign(max_k + 1, 0.0);
  RandomEngine rng(seed);
  double p = C / static_cast<double>(region_size);
  std::uint64_t none = 0;
  double total = 0.0;
  // Each member independently keeps the message with probability C/n, so the
  // bufferer count is Binomial(n, C/n): one O(1) draw per trial instead of n
  // Bernoullis (the 2M-trial Figure 4 sweep was O(trials·n)).
  for (std::size_t t = 0; t < trials; ++t) {
    std::uint64_t k = rng.binomial(region_size, p);
    if (k == 0) ++none;
    if (k <= max_k) out.pmf[k] += 1.0;
    total += static_cast<double>(k);
  }
  for (double& v : out.pmf) v /= static_cast<double>(trials);
  out.p_none = static_cast<double>(none) / static_cast<double>(trials);
  out.mean = total / static_cast<double>(trials);
  return out;
}

// ----------------------------------------------------------- Ablation A3 ----

LambdaResult run_lambda_experiment(double lambda, std::size_t region_size,
                                   std::size_t parent_size, std::size_t trials,
                                   std::uint64_t seed,
                                   const ExperimentDefaults& defaults) {
  std::vector<double> first_round;
  std::vector<double> completion_ms;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ClusterConfig cc = base_config(defaults);
    cc.region_sizes = {parent_size, region_size};
    cc.protocol.lambda = lambda;
    cc.seed = seed + trial * 6151;
    Cluster cluster(cc);

    std::vector<MemberId> parent = cluster.region_members(0);
    std::vector<MemberId> child = cluster.region_members(1);
    MessageId id = cluster.inject_data_to(parent[0], 1, parent);
    cluster.inject_session_to(parent[0], 1, child);
    // Loss detection and first-round requests are synchronous at t=0.
    first_round.push_back(
        static_cast<double>(cluster.metrics().remote_requests_for(id)));

    cluster.run_until_quiet(Duration::seconds(3));
    TimePoint done = TimePoint::zero();
    for (const auto& ev : cluster.metrics().deliveries()) {
      if (ev.id == id && ev.at > done) done = ev.at;
    }
    if (cluster.all_received(id)) completion_ms.push_back(done.ms());
  }
  LambdaResult r;
  r.mean_first_round = analysis::mean(first_round);
  r.mean_recovery_ms = analysis::mean(completion_ms);
  return r;
}

// ----------------------------------------------------------- Ablation A2 ----

SearchStrategyOutcome run_search_strategy(Config::SearchStrategy strategy,
                                          std::size_t region_size,
                                          std::size_t holders,
                                          std::size_t trials,
                                          std::uint64_t seed,
                                          const ExperimentDefaults& defaults) {
  std::vector<double> replies;
  std::vector<double> times;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ClusterConfig cc = base_config(defaults);
    cc.region_sizes = {region_size, 1};
    cc.protocol.search_strategy = strategy;
    cc.protocol.query_backoff_c = defaults.C;
    cc.seed = seed + trial * 3571;
    Cluster cluster(cc);

    std::vector<MemberId> region0 = cluster.region_members(0);
    MemberId requester = cluster.region_members(1)[0];
    MessageId id = cluster.inject_data_to(region0[0], 1, region0);

    RandomEngine rng(seed ^ (trial * 0xABCDEFULL) ^ 0x5555);
    std::unordered_set<MemberId> keep;
    for (MemberId b : pick_members(region0, holders, rng)) keep.insert(b);
    std::vector<MemberId> discarded;
    for (MemberId m : region0) {
      if (!keep.count(m)) {
        cluster.force_discard(m, id);
        discarded.push_back(m);
      }
    }
    if (discarded.empty()) continue;  // need a premature-idle entry point
    MemberId entry = discarded[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(discarded.size()) - 1))];
    cluster.inject_remote_request(entry, id, requester);
    cluster.run_until_quiet(Duration::seconds(1));

    // "Replies" = SearchFound announce multicasts: the paper's implosion
    // unit (one per member that answered the query before suppression).
    replies.push_back(
        static_cast<double>(cluster.metrics().counters().searches_completed));
    TimePoint t = cluster.metrics().first_remote_repair(id);
    if (t != TimePoint::max()) times.push_back(t.ms());
  }
  SearchStrategyOutcome out;
  out.strategy = strategy == Config::SearchStrategy::kRandomSearch
                     ? "random-search"
                     : "multicast-query";
  out.mean_replies = analysis::mean(replies);
  out.mean_search_ms = analysis::mean(times);
  return out;
}

// ----------------------------------------------------------- Ablation A4 ----

PolicyOutcome run_stream_scenario(buffer::PolicyKind kind,
                                  const StreamScenario& scenario,
                                  const ExperimentDefaults& defaults) {
  ClusterConfig cc = base_config(defaults);
  cc.region_sizes = {scenario.region_size};
  cc.policy = spec_for(kind, defaults);
  cc.protocol.buffer_budget = scenario.budget;
  cc.protocol.buffer_coordination = scenario.coordination;
  cc.protocol.lookup = kind == buffer::PolicyKind::kHashBased
                           ? BuffererLookup::kHashDirect
                           : BuffererLookup::kRandomized;
  cc.protocol.history_interval = Duration::millis(20);
  cc.data_loss = scenario.data_loss;
  cc.seed = scenario.seed;
  Cluster cluster(cc);

  MemberId sender = 0;
  for (std::size_t i = 0; i < scenario.messages; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + scenario.send_interval * static_cast<std::int64_t>(i),
        [&cluster, sender, bytes = scenario.payload_bytes] {
          cluster.endpoint(sender).multicast(
              std::vector<std::uint8_t>(bytes, 0x5A));
        });
  }

  TimePoint end = TimePoint::zero() +
                  scenario.send_interval *
                      static_cast<std::int64_t>(scenario.messages) +
                  scenario.drain;
  std::vector<double> occupancy;
  std::function<void()> sampler = [&] {
    occupancy.push_back(static_cast<double>(cluster.total_buffered()));
    if (cluster.now() + Duration::millis(5) <= end) {
      cluster.schedule_script_after(Duration::millis(5), sampler);
    }
  };
  cluster.schedule_script_after(Duration::millis(5), sampler);
  cluster.run_for(end - TimePoint::zero());

  PolicyOutcome out;
  out.policy = buffer::to_string(kind);
  out.all_delivered = true;
  std::size_t fully_delivered = 0;
  for (std::uint64_t seq = 1; seq <= scenario.messages; ++seq) {
    if (cluster.all_received(MessageId{sender, seq})) {
      ++fully_delivered;
    } else {
      out.all_delivered = false;
    }
  }
  out.delivered_fraction =
      scenario.messages == 0
          ? 1.0
          : static_cast<double>(fully_delivered) /
                static_cast<double>(scenario.messages);
  std::size_t peak = 0, peak_bytes = 0;
  std::uint64_t open = 0;
  for (MemberId m = 0; m < cluster.size(); ++m) {
    const buffer::BufferStats& bs = cluster.endpoint(m).buffer().stats();
    peak = std::max(peak, bs.peak_count);
    peak_bytes = std::max(peak_bytes, bs.peak_bytes);
    out.evictions += bs.evicted;
    out.sheds += bs.shed;
    out.rejected += bs.rejected;
    open += cluster.endpoint(m).active_recoveries();
  }
  out.unrecovered = open;
  out.peak_buffer_per_member = static_cast<double>(peak);
  out.peak_bytes_per_member = static_cast<double>(peak_bytes);
  out.mean_occupancy_per_member =
      analysis::mean(occupancy) / static_cast<double>(scenario.region_size);
  out.final_buffered_total = static_cast<double>(cluster.total_buffered());
  std::vector<double> rec_ms;
  for (Duration d : cluster.metrics().recovery_latencies()) {
    rec_ms.push_back(d.ms());
  }
  out.mean_recovery_ms = analysis::mean(rec_ms);
  const auto& counters = cluster.metrics().counters();
  out.recovery_success =
      counters.losses_detected == 0
          ? 1.0
          : static_cast<double>(counters.recoveries) /
                static_cast<double>(counters.losses_detected);

  const net::TrafficStats& ts = cluster.network().stats();
  auto by_type = [&ts](proto::MessageType t) {
    return ts.sends_by_type[static_cast<std::size_t>(t)];
  };
  auto bytes_by_type = [&ts](proto::MessageType t) {
    return ts.bytes_by_type[static_cast<std::size_t>(t)];
  };
  using MT = proto::MessageType;
  for (MT t : {MT::kSession, MT::kLocalRequest, MT::kRemoteRequest,
               MT::kSearchRequest, MT::kSearchFound, MT::kGossip, MT::kHistory,
               MT::kHandoff, MT::kBufferDigest, MT::kShed}) {
    out.control_msgs += by_type(t);
    out.control_bytes += bytes_by_type(t);
  }
  out.repair_msgs = by_type(MT::kRepair) + by_type(MT::kRegionalRepair);
  out.digest_msgs = by_type(MT::kBufferDigest);
  return out;
}

// --------------------------------------------- Extension: capacity sweep ----

CapacityOutcome run_capacity_point(std::size_t budget_bytes,
                                   buffer::PolicyKind kind,
                                   const StreamScenario& scenario,
                                   const ExperimentDefaults& defaults) {
  StreamScenario s = scenario;
  s.budget.max_bytes = budget_bytes;
  PolicyOutcome o = run_stream_scenario(kind, s, defaults);
  CapacityOutcome out;
  out.budget_bytes = budget_bytes;
  out.delivered_fraction = o.delivered_fraction;
  out.recovery_success = o.recovery_success;
  out.mean_recovery_ms = o.mean_recovery_ms;
  out.evictions = o.evictions;
  out.rejected = o.rejected;
  out.unrecovered = o.unrecovered;
  out.peak_bytes_per_member = o.peak_bytes_per_member;
  return out;
}

// ------------------------------------- Extension: budget coordination ----

CoordinationOutcome run_coordination_point(std::size_t budget_bytes,
                                           bool coordinate,
                                           buffer::PolicyKind kind,
                                           const StreamScenario& scenario,
                                           const ExperimentDefaults& defaults) {
  StreamScenario s = scenario;
  s.budget.max_bytes = budget_bytes;
  s.coordination.enabled = coordinate;
  PolicyOutcome o = run_stream_scenario(kind, s, defaults);
  CoordinationOutcome out;
  out.budget_bytes = budget_bytes;
  out.coordinated = coordinate;
  out.delivered_fraction = o.delivered_fraction;
  out.recovery_success = o.recovery_success;
  out.mean_recovery_ms = o.mean_recovery_ms;
  out.evictions = o.evictions;
  out.sheds = o.sheds;
  out.rejected = o.rejected;
  out.unrecovered = o.unrecovered;
  out.digest_msgs = o.digest_msgs;
  out.peak_bytes_per_member = o.peak_bytes_per_member;
  return out;
}

// --------------------------------- Extension: flash-crowd overload ----

OverloadOutcome run_overload_point(std::size_t senders, bool flow_on,
                                   const OverloadScenario& scenario,
                                   const ExperimentDefaults& defaults) {
  ClusterConfig cc = base_config(defaults);
  cc.region_sizes = {scenario.region_size};
  cc.protocol.buffer_budget.max_bytes = scenario.budget_bytes;
  cc.protocol.buffer_coordination.enabled = true;
  cc.protocol.buffer_coordination.digest_interval = Duration::millis(10);
  cc.protocol.flow.enabled = flow_on;
  cc.protocol.flow.window_size = scenario.window_size;
  cc.protocol.flow.target_budget_bytes = scenario.target_budget_bytes;
  cc.protocol.flow.ack_interval = scenario.ack_interval;
  cc.protocol.flow.adaptive = scenario.adaptive;
  cc.protocol.flow.min_window = scenario.min_window;
  cc.protocol.flow.max_window = scenario.max_window;
  cc.protocol.flow.piggyback = scenario.piggyback;
  cc.data_loss = scenario.data_loss;
  cc.seed = scenario.seed;
  Cluster cluster(cc);

  // Flash crowd: every sender fires at the *same* instants.
  std::size_t n = std::min(senders, scenario.region_size);
  for (std::size_t i = 0; i < scenario.messages_per_sender; ++i) {
    TimePoint at =
        TimePoint::zero() + scenario.send_interval * static_cast<std::int64_t>(i);
    for (MemberId s = 0; s < static_cast<MemberId>(n); ++s) {
      cluster.schedule_script(at, [&cluster, s,
                                   bytes = scenario.payload_bytes] {
        cluster.endpoint(s).multicast(std::vector<std::uint8_t>(bytes, 0x5A));
      });
    }
  }
  Duration burst = scenario.send_interval *
                   static_cast<std::int64_t>(scenario.messages_per_sender);
  if (scenario.churn && n < scenario.region_size) {
    // Churn axis: a non-sender receiver crashes a third of the way through
    // the burst and rejoins two thirds through — a joiner with no receive
    // state arriving mid-flash-crowd. Its seeded cursor must keep the
    // crowd's window floors from collapsing to 0 while it backfills.
    MemberId victim = static_cast<MemberId>(scenario.region_size - 1);
    cluster.schedule_script(TimePoint::zero() + burst / 3,
                            [&cluster, victim] { cluster.crash(victim); });
    cluster.schedule_script(TimePoint::zero() + (burst * 2) / 3,
                            [&cluster, victim] { cluster.rejoin(victim); });
  }
  Duration total = burst + scenario.drain;
  cluster.run_for(total);

  OverloadOutcome out;
  out.senders = n;
  out.flow_on = flow_on;
  std::vector<double> per_sender;
  std::size_t fully = 0;
  for (MemberId s = 0; s < static_cast<MemberId>(n); ++s) {
    std::size_t got = 0;
    for (std::uint64_t seq = 1; seq <= scenario.messages_per_sender; ++seq) {
      if (cluster.all_received(MessageId{s, seq})) ++got;
    }
    per_sender.push_back(static_cast<double>(got));
    fully += got;
  }
  std::size_t streamed = n * scenario.messages_per_sender;
  out.goodput = streamed == 0 ? 1.0
                              : static_cast<double>(fully) /
                                    static_cast<double>(streamed);
  // Jain's index: (sum x)^2 / (n * sum x^2); 1.0 for the degenerate
  // nothing-delivered case (no sender was favoured over another).
  double sum = 0.0, sumsq = 0.0;
  for (double x : per_sender) {
    sum += x;
    sumsq += x * x;
  }
  out.fairness = sumsq == 0.0 ? 1.0
                              : (sum * sum) / (static_cast<double>(n) * sumsq);
  for (MemberId m = 0; m < cluster.size(); ++m) {
    const buffer::BufferStats& bs = cluster.endpoint(m).buffer().stats();
    out.evictions += bs.evicted;
    out.sheds += bs.shed;
    out.rejected += bs.rejected;
    out.unrecovered += cluster.endpoint(m).active_recoveries();
  }
  out.deferred = cluster.metrics().counters().sends_deferred;
  out.credit_msgs = cluster.network().stats().sends_by_type[static_cast<
      std::size_t>(proto::MessageType::kCreditAck)];
  out.credit_bytes = cluster.network().stats().bytes_by_type[static_cast<
      std::size_t>(proto::MessageType::kCreditAck)];
  out.acks_suppressed = cluster.metrics().counters().credit_acks_suppressed;
  out.stall_remcasts = cluster.metrics().counters().flow_stall_remcasts;
  out.stall_releases = cluster.metrics().counters().flow_stall_releases;
  for (MemberId s = 0; s < static_cast<MemberId>(n); ++s) {
    if (cluster.endpoint(s).highest_sent() >= scenario.messages_per_sender) {
      ++out.senders_completed;
    }
  }
  out.delivered_payload_bytes =
      static_cast<std::uint64_t>(fully) * scenario.payload_bytes;
  out.control_overhead =
      out.delivered_payload_bytes == 0
          ? 0.0
          : static_cast<double>(out.credit_bytes) /
                static_cast<double>(out.delivered_payload_bytes);
  return out;
}

// --------------------------------- Extension: degradation sweep ----

const char* fault_cell_name(FaultCell cell) {
  switch (cell) {
    case FaultCell::kClean: return "clean";
    case FaultCell::kPartition: return "partition";
    case FaultCell::kLossyEdge: return "lossy-edge";
    case FaultCell::kChurnStorm: return "churn-storm";
    case FaultCell::kDigestLoss: return "digest-loss";
  }
  return "?";
}

FaultOutcome run_fault_cell(FaultCell cell, const FaultScenario& scenario,
                            const ExperimentDefaults& defaults) {
  ClusterConfig cc = base_config(defaults);
  cc.region_sizes = {scenario.region_size};
  cc.protocol.buffer_budget.max_bytes = scenario.budget_bytes;
  cc.protocol.buffer_coordination.enabled = true;
  cc.protocol.buffer_coordination.digest_interval = Duration::millis(10);
  cc.protocol.flow.enabled = true;
  cc.protocol.flow.window_size = scenario.window_size;
  cc.protocol.flow.ack_interval = scenario.ack_interval;
  cc.data_loss = scenario.data_loss;
  cc.seed = scenario.seed;
  Cluster cluster(cc);

  // The flash-crowd workload every cell shares: `senders` members stream at
  // the same instants into tight budgets.
  std::size_t n = std::min(scenario.senders, scenario.region_size);
  for (std::size_t i = 0; i < scenario.messages_per_sender; ++i) {
    TimePoint at =
        TimePoint::zero() + scenario.send_interval * static_cast<std::int64_t>(i);
    for (MemberId s = 0; s < static_cast<MemberId>(n); ++s) {
      cluster.schedule_script(at, [&cluster, s,
                                   bytes = scenario.payload_bytes] {
        cluster.endpoint(s).multicast(std::vector<std::uint8_t>(bytes, 0x5A));
      });
    }
  }
  Duration burst = scenario.send_interval *
                   static_cast<std::int64_t>(scenario.messages_per_sender);

  // Cell-specific hostility, built as a FaultScript timeline. Victims are
  // always drawn from the tail of the member range so they never overlap
  // the senders at the front.
  auto tail_members = [&](std::size_t k) {
    k = std::min(k, scenario.region_size - n);
    std::vector<MemberId> out;
    for (std::size_t i = scenario.region_size - k; i < scenario.region_size;
         ++i) {
      out.push_back(static_cast<MemberId>(i));
    }
    return out;
  };
  TimePoint t0 = TimePoint::zero();
  std::vector<bool> was_crashed(scenario.region_size, false);
  FaultScript faults;
  switch (cell) {
    case FaultCell::kClean: break;
    case FaultCell::kPartition: {
      // A minority of the receivers loses contact with everyone else a third
      // into the burst; the wall comes down when the burst ends, so the
      // drain window measures whether they backfill what they missed.
      std::size_t k = std::max<std::size_t>(1, (scenario.region_size - n) / 3);
      faults.partition(t0 + burst / 3, {tail_members(k)});
      faults.heal(t0 + burst);
      break;
    }
    case FaultCell::kLossyEdge: {
      std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(scenario.region_size) *
                 scenario.lossy_fraction));
      faults.link_loss(t0, tail_members(k), scenario.edge_loss);
      break;
    }
    case FaultCell::kChurnStorm: {
      std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(scenario.region_size - n) *
                 scenario.churn_fraction));
      std::vector<MemberId> victims = tail_members(k);
      for (MemberId v : victims) was_crashed[v] = true;
      faults.crash(t0 + burst / 3, victims);
      faults.rejoin(t0 + (burst * 2) / 3, victims);
      break;
    }
    case FaultCell::kDigestLoss: {
      faults.control_loss(t0 + burst / 3, scenario.spike_loss);
      faults.control_loss(t0 + (burst * 2) / 3, 0.0);
      break;
    }
  }
  if (!faults.empty()) faults.schedule_on(cluster);

  cluster.run_for(burst + scenario.drain);

  FaultOutcome out;
  out.cell = cell;
  out.senders = n;
  std::vector<double> per_sender;
  std::size_t fully = 0;
  for (MemberId s = 0; s < static_cast<MemberId>(n); ++s) {
    std::size_t got = 0;
    for (std::uint64_t seq = 1; seq <= scenario.messages_per_sender; ++seq) {
      if (cluster.all_received(MessageId{s, seq})) ++got;
    }
    per_sender.push_back(static_cast<double>(got));
    fully += got;
  }
  std::size_t streamed = n * scenario.messages_per_sender;
  out.goodput = streamed == 0 ? 1.0
                              : static_cast<double>(fully) /
                                    static_cast<double>(streamed);
  double sum = 0.0, sumsq = 0.0;
  for (double x : per_sender) {
    sum += x;
    sumsq += x * x;
  }
  out.fairness = sumsq == 0.0 ? 1.0
                              : (sum * sum) / (static_cast<double>(n) * sumsq);
  for (MemberId m = 0; m < cluster.size(); ++m) {
    if (!cluster.directory().alive(m)) continue;
    const buffer::BufferStats& bs = cluster.endpoint(m).buffer().stats();
    out.evictions += bs.evicted;
    out.sheds += bs.shed;
    // A rejoiner's exhausted pre-crash backfills are a deficit, not a
    // liveness failure; members that kept their state get no such excuse.
    if (was_crashed[m]) {
      out.unrecovered_rejoined += cluster.endpoint(m).active_recoveries();
    } else {
      out.unrecovered += cluster.endpoint(m).active_recoveries();
    }
  }
  const auto& counters = cluster.metrics().counters();
  out.recovery_success =
      counters.losses_detected == 0
          ? 1.0
          : static_cast<double>(counters.recoveries) /
                static_cast<double>(counters.losses_detected);
  std::vector<double> rec_ms;
  for (Duration d : cluster.metrics().recovery_latencies()) {
    rec_ms.push_back(d.ms());
  }
  out.mean_recovery_ms = analysis::mean(rec_ms);
  out.deferred = counters.sends_deferred;
  out.stall_releases = counters.flow_stall_releases;
  out.severed = cluster.network().stats().severed;
  for (MemberId s = 0; s < static_cast<MemberId>(n); ++s) {
    if (cluster.endpoint(s).highest_sent() >= scenario.messages_per_sender) {
      ++out.senders_completed;
    }
  }
  return out;
}

// ----------------------------------------------------------- Ablation A5 ----

ChurnOutcome run_churn_handoff(bool with_handoff, std::size_t region_size,
                               std::size_t trials, std::uint64_t seed,
                               const ExperimentDefaults& defaults) {
  ChurnOutcome out;
  out.trials = trials;
  std::vector<double> latencies;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    ClusterConfig cc = base_config(defaults);
    cc.region_sizes = {region_size, 1};
    cc.seed = seed + trial * 2477;
    Cluster cluster(cc);

    std::vector<MemberId> region0 = cluster.region_members(0);
    MemberId requester = cluster.region_members(1)[0];
    MessageId id = cluster.inject_data_to(region0[0], 1, region0);
    // Let the idle threshold pass: only the random long-term set remains.
    cluster.run_for(Duration::millis(100));

    std::vector<MemberId> bufferers;
    for (MemberId m : region0) {
      if (cluster.endpoint(m).buffer().is_long_term(id)) bufferers.push_back(m);
    }
    if (bufferers.empty()) continue;  // P = e^-C; counts as not recovered

    // Every long-term bufferer departs.
    for (MemberId b : bufferers) {
      if (with_handoff) {
        cluster.leave(b);
      } else {
        cluster.crash(b);
      }
    }
    cluster.run_for(Duration::millis(50));  // handoffs propagate

    // A downstream member now asks for the message.
    RandomEngine rng(seed ^ (trial * 0x1234567ULL));
    std::vector<MemberId> survivors;
    for (MemberId m : region0) {
      if (cluster.directory().alive(m)) survivors.push_back(m);
    }
    MemberId target = survivors[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(survivors.size()) - 1))];
    TimePoint t0 = cluster.now();
    cluster.inject_remote_request(target, id, requester);
    cluster.run_for(Duration::millis(500));

    if (cluster.endpoint(requester).has_received(id)) {
      ++out.recovered;
      TimePoint t = cluster.metrics().first_remote_repair(id);
      if (t != TimePoint::max() && t >= t0) latencies.push_back((t - t0).ms());
    }
  }
  out.mean_recovery_ms = analysis::mean(latencies);
  return out;
}

// ------------------------------------- hierarchical repair makespan ----------

MakespanOutcome run_makespan_point(const MakespanScenario& scenario,
                                   const ExperimentDefaults& defaults) {
  // Complete fanout-ary region tree, BFS-numbered: region 0 is the root,
  // children of region k are k*fanout+1 .. k*fanout+fanout.
  std::size_t regions = 0;
  {
    std::size_t level = 1;
    for (std::size_t d = 0; d <= scenario.depth; ++d) {
      regions += level;
      level *= scenario.fanout;
    }
  }
  ClusterConfig cc = base_config(defaults);
  cc.region_sizes.assign(regions, scenario.region_size);
  cc.parents.resize(regions);
  cc.parents[0] = 0;
  for (std::size_t r = 1; r < regions; ++r) {
    cc.parents[r] = static_cast<RegionId>((r - 1) / scenario.fanout);
  }
  cc.seed = scenario.seed;
  cc.shards = scenario.shards;
  cc.sub_shard_members = scenario.sub_shard_members;
  cc.protocol.hierarchy.enabled = true;
  Cluster cluster(cc);

  std::vector<MemberId> root = cluster.region_members(0);
  MessageId id =
      cluster.inject_data_to(root[0], 1, root, scenario.payload_bytes);
  std::vector<MemberId> rest;
  rest.reserve(cluster.size() - root.size());
  for (std::size_t r = 1; r < regions; ++r) {
    std::vector<MemberId> members =
        cluster.region_members(static_cast<RegionId>(r));
    rest.insert(rest.end(), members.begin(), members.end());
  }
  cluster.inject_session_to(root[0], 1, rest);
  cluster.run_until_quiet(scenario.quiet_cap);

  MakespanOutcome out;
  out.members = cluster.size();
  out.regions = regions;
  out.all_recovered = cluster.all_received(id);
  TimePoint done = TimePoint::zero();
  for (const auto& ev : cluster.metrics().deliveries()) {
    if (ev.id == id && ev.at > done) done = ev.at;
  }
  out.makespan_ms = done.ms();
  out.local_requests = cluster.metrics().counters().local_requests_sent;
  out.remote_requests = cluster.metrics().counters().remote_requests_sent;
  out.events = cluster.events_fired();
  return out;
}

// ----------------------------------------------------------- Ablation A1 ----

double simulate_no_request_probability(std::size_t region_size, double p,
                                       std::size_t trials,
                                       std::uint64_t seed) {
  RandomEngine rng(seed);
  auto missing = static_cast<std::size_t>(
      static_cast<double>(region_size) * p + 0.5);
  std::uint64_t quiet = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    // Member 0 holds the message; `missing` other members each send one
    // request to a uniformly random member other than themselves.
    bool hit = false;
    for (std::size_t m = 1; m <= missing && m < region_size; ++m) {
      auto target = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(region_size) - 2));
      if (target >= m) ++target;  // skip self
      if (target == 0) {
        hit = true;
        break;
      }
    }
    if (!hit) ++quiet;
  }
  return static_cast<double>(quiet) / static_cast<double>(trials);
}

}  // namespace rrmp::harness
