#include "harness/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace rrmp::harness {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      topology_(net::make_hierarchy(
          config_.region_sizes, config_.intra_rtt, config_.inter_one_way,
          config_.parents.empty() ? nullptr : &config_.parents)),
      directory_(topology_),
      master_rng_(config_.seed) {
  network_ = std::make_unique<net::SimNetwork>(
      topology_, master_rng_.fork(0xD00D), config_.sub_shard_members);
  network_->set_control_loss(net::make_bernoulli(config_.control_loss));
  network_->set_latency_jitter(config_.jitter);
  network_->set_codec_roundtrip(config_.codec_roundtrip);
  pool_ = std::make_unique<ShardPool>(
      ShardPool::resolve(config_.shards, network_->lane_count()));
  lane_sinks_.resize(network_->lane_count());

  std::size_t n = topology_.member_count();
  hosts_.assign(n, nullptr);
  endpoints_.assign(n, nullptr);
  removed_.assign(n, false);
  for (MemberId m = 0; m < n; ++m) spawn_member(m);
}

Cluster::~Cluster() {
  // Halt endpoints before the simulators die so no timer callback can touch
  // a destroyed endpoint during teardown, then run destructors explicitly —
  // arena objects are not owned by smart pointers.
  for (Endpoint* ep : endpoints_) {
    if (ep) ep->halt();
  }
  for (Endpoint* ep : endpoints_) arena_.destroy(ep);
  for (SimHost* h : hosts_) arena_.destroy(h);
}

void Cluster::spawn_member(MemberId m) {
  // Rejoin path: retire the dead member's old objects before creating the
  // replacements (initial construction finds nullptrs here).
  arena_.destroy(endpoints_[m]);
  arena_.destroy(hosts_[m]);
  hosts_[m] = arena_.create<SimHost>(m, *network_, directory_,
                                     master_rng_.fork(m + 1),
                                     config_.data_loss);
  auto policy = buffer::make_policy(config_.policy);
  RecordingSink* sink = &lane_sinks_[network_->lane_of(m)];
  endpoints_[m] = arena_.create<Endpoint>(*hosts_[m], config_.protocol,
                                          std::move(policy), sink);
  Endpoint* ep = endpoints_[m];
  hosts_[m]->set_receiver(
      [ep](const proto::Message& msg, MemberId from) {
        ep->handle_message(msg, from);
      });
  network_->attach(m, hosts_[m]);
  // A member rejoining after the first partition/heal starts with a fresh
  // endpoint: hand it the current connectivity generation (and severed
  // peers, if a partition is active) or it would reject every current-
  // generation CreditAck/BufferDigest. Never fires in fault-free runs.
  if (fault_generation_ > 0) {
    std::vector<MemberId> unreachable;
    for (MemberId peer : topology_.members_of(topology_.region_of(m))) {
      if (peer != m && !removed_[peer] && network_->severed(m, peer)) {
        unreachable.push_back(peer);
      }
    }
    endpoints_[m]->on_partition_change(std::move(unreachable),
                                       fault_generation_);
  }
}

const RecordingSink& Cluster::metrics() {
  if (lane_sinks_.size() == 1) return lane_sinks_[0];
  std::vector<std::uint64_t> revisions;
  revisions.reserve(lane_sinks_.size());
  for (const RecordingSink& s : lane_sinks_) revisions.push_back(s.revision());
  if (revisions != merged_revisions_) {
    std::vector<const RecordingSink*> sinks;
    sinks.reserve(lane_sinks_.size());
    for (const RecordingSink& s : lane_sinks_) sinks.push_back(&s);
    merged_metrics_ = RecordingSink::merge(sinks);
    merged_revisions_ = std::move(revisions);
  }
  return merged_metrics_;
}

// ---- time control ---------------------------------------------------------

TimePoint Cluster::now() const {
  if (network_->lane_count() == 1) return network_->lane_sim(0).now();
  return clock_;
}

TimePoint Cluster::next_script_time() const {
  return scripts_.empty() ? TimePoint::max() : scripts_.front().at;
}

void Cluster::schedule_script(TimePoint t, std::function<void()> fn) {
  if (network_->lane_count() == 1) {
    // Single lane: scripts interleave with protocol events on the one queue,
    // exactly like the pre-sharding harness.
    network_->lane_sim(0).schedule_at(t, std::move(fn));
    return;
  }
  if (t < clock_) t = clock_;
  scripts_.push_back(Script{t, next_script_seq_++, std::move(fn)});
  std::push_heap(scripts_.begin(), scripts_.end(), ScriptLater{});
}

void Cluster::run_due_scripts() {
  while (!scripts_.empty() && scripts_.front().at <= clock_) {
    std::pop_heap(scripts_.begin(), scripts_.end(), ScriptLater{});
    Script s = std::move(scripts_.back());
    scripts_.pop_back();
    s.fn();
  }
}

void Cluster::advance_lanes_to(TimePoint t) {
  auto run_lane = [this, t](std::size_t lane) {
    network_->lane_sim(lane).run_until(t);
  };
  pool_->run(network_->lane_count(), run_lane);
  if (network_->exchange() > 0) {
    // Settle cross-region arrivals landing exactly at the barrier; anything
    // they send in turn is at least one lookahead in the future, so the
    // second exchange only queues strictly-later deliveries.
    pool_->run(network_->lane_count(), run_lane);
    network_->exchange();
  }
  clock_ = t;
}

void Cluster::run_for(Duration d) {
  if (network_->lane_count() == 1) {
    sim::Simulator& s = network_->lane_sim(0);
    s.run_until(s.now() + d);
    return;
  }
  const Duration lookahead = network_->lookahead();
  const TimePoint t_end = clock_ + d;
  while (clock_ < t_end || next_script_time() <= t_end) {
    // Cross-lane packets sent outside a window (scripts, top-level
    // injections) sit in lane outboxes without a queue entry; move them
    // into destination queues before computing the next window.
    network_->exchange();
    TimePoint tn = std::min(network_->next_event_time(), next_script_time());
    TimePoint e;
    if (tn >= t_end) {
      // Nothing fires strictly before t_end: one jump instead of stepping
      // through empty lookahead windows. Safe because a window with no
      // events before its end cannot send anything that lands inside it.
      e = t_end;
    } else {
      e = std::min(std::max(tn, clock_) + lookahead, t_end);
      e = std::min(e, next_script_time());
    }
    advance_lanes_to(e);
    run_due_scripts();
    if (clock_ >= t_end && next_script_time() > t_end) break;
  }
  network_->exchange();  // scripts at t_end must not strand packets
}

void Cluster::run_until_quiet(Duration cap) {
  if (network_->lane_count() == 1) {
    sim::Simulator& s = network_->lane_sim(0);
    TimePoint horizon = s.now() + cap;
    while (s.pending_count() > 0 && s.now() <= horizon) s.step();
    return;
  }
  const Duration lookahead = network_->lookahead();
  const TimePoint horizon = clock_ + cap;
  for (;;) {
    // As in run_for: make outbox packets visible to next_event_time() so a
    // cluster whose only remaining activity is an un-exchanged cross-region
    // packet is not mistaken for quiescent.
    network_->exchange();
    TimePoint tn = std::min(network_->next_event_time(), next_script_time());
    if (tn == TimePoint::max() || tn > horizon) break;
    TimePoint e = std::min(std::max(tn, clock_) + lookahead, horizon);
    e = std::min(e, next_script_time());
    advance_lanes_to(e);
    run_due_scripts();
  }
}

// ---- scenario control -----------------------------------------------------

MessageId Cluster::inject(MemberId source, std::uint64_t seq,
                          std::span<const MemberId> holders,
                          std::size_t payload_bytes) {
  MessageId id{source, seq};
  proto::Data data{id, std::vector<std::uint8_t>(payload_bytes, 0xAB)};
  std::vector<bool> is_holder(size(), false);
  for (MemberId h : holders) is_holder.at(h) = true;
  proto::Session session{source, seq};
  for (MemberId m = 0; m < size(); ++m) {
    if (removed_[m]) continue;
    if (is_holder[m]) {
      endpoints_[m]->handle_message(proto::Message{data}, source);
    } else {
      endpoints_[m]->handle_message(proto::Message{session}, source);
    }
  }
  return id;
}

MessageId Cluster::inject_data_to(MemberId source, std::uint64_t seq,
                                  std::span<const MemberId> holders,
                                  std::size_t payload_bytes) {
  MessageId id{source, seq};
  proto::Data data{id, std::vector<std::uint8_t>(payload_bytes, 0xAB)};
  for (MemberId m : holders) {
    if (!removed_.at(m)) {
      endpoints_[m]->handle_message(proto::Message{data}, source);
    }
  }
  return id;
}

void Cluster::inject_session_to(MemberId source, std::uint64_t seq,
                                std::span<const MemberId> members) {
  proto::Session session{source, seq};
  for (MemberId m : members) {
    if (!removed_.at(m)) {
      endpoints_[m]->handle_message(proto::Message{session}, source);
    }
  }
}

void Cluster::inject_remote_request(MemberId target, const MessageId& id,
                                    MemberId requester) {
  endpoints_.at(target)->handle_message(
      proto::Message{proto::RemoteRequest{id, requester}}, requester);
}

void Cluster::force_long_term(MemberId member, const MessageId& id) {
  Endpoint& ep = *endpoints_.at(member);
  std::optional<proto::Data> d = ep.buffer().get(id);
  if (!d) throw std::logic_error("force_long_term: message not buffered");
  ep.buffer().accept_handoff(*d);  // upgrades an existing entry to long-term
}

void Cluster::force_discard(MemberId member, const MessageId& id) {
  endpoints_.at(member)->buffer().force_discard(id);
}

void Cluster::leave(MemberId m) {
  if (removed_.at(m)) return;
  endpoints_[m]->leave();
  network_->detach(m);
  directory_.mark_left(m);
  removed_[m] = true;
  notify_view_change();
}

void Cluster::crash(MemberId m) {
  if (removed_.at(m)) return;
  endpoints_[m]->halt();
  network_->detach(m);
  directory_.mark_failed(m);
  removed_[m] = true;
  notify_view_change();
}

void Cluster::rejoin(MemberId m) {
  if (!removed_.at(m)) return;
  directory_.mark_joined(m);
  removed_[m] = false;
  spawn_member(m);
  notify_view_change();
}

// ---- fault injection ------------------------------------------------------

void Cluster::partition(const std::vector<std::vector<MemberId>>& groups) {
  network_->set_partition(groups);
  ++fault_generation_;
  notify_partition_change();
}

void Cluster::partition_regions(
    const std::vector<std::vector<RegionId>>& groups) {
  std::vector<std::vector<MemberId>> member_groups;
  member_groups.reserve(groups.size());
  for (const std::vector<RegionId>& regions : groups) {
    std::vector<MemberId>& g = member_groups.emplace_back();
    for (RegionId r : regions) {
      const std::vector<MemberId>& members = topology_.members_of(r);
      g.insert(g.end(), members.begin(), members.end());
    }
  }
  partition(member_groups);
}

void Cluster::heal() {
  if (!network_->partitioned()) return;
  network_->clear_partition();
  ++fault_generation_;
  notify_partition_change();
}

void Cluster::notify_partition_change() {
  // Like notify_view_change: runs at a script barrier, fixed ascending
  // order, so everything the reconciliation transmits is deterministic at
  // every shard count. Flow control is regional, so only region peers can
  // be credit-relevant unreachables.
  for (MemberId m = 0; m < size(); ++m) {
    if (removed_[m]) continue;
    std::vector<MemberId> unreachable;
    for (MemberId peer : topology_.members_of(topology_.region_of(m))) {
      if (peer != m && !removed_[peer] && network_->severed(m, peer)) {
        unreachable.push_back(peer);
      }
    }
    endpoints_[m]->on_partition_change(std::move(unreachable),
                                       fault_generation_);
  }
}

void Cluster::set_data_loss(double rate) {
  config_.data_loss = rate;  // future rejoins inherit the new rate
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m]) hosts_[m]->set_data_loss(rate);
  }
}

void Cluster::set_member_data_loss(MemberId m, double rate) {
  if (!removed_.at(m)) hosts_[m]->set_data_loss(rate);
}

void Cluster::set_control_loss(double rate) {
  // Stateless Bernoulli models: replacing every lane's instance at a
  // barrier is safe and deterministic.
  network_->set_control_loss(net::make_bernoulli(rate));
}

void Cluster::set_lossy_members(const std::vector<MemberId>& members,
                                double rate) {
  for (MemberId m : members) link_loss_.set_member_rate(m, rate);
  network_->set_link_loss(link_loss_);
}

void Cluster::set_link_loss(MemberId src, MemberId dst, double rate) {
  link_loss_.set_link_rate(src, dst, rate);
  network_->set_link_loss(link_loss_);
}

void Cluster::notify_view_change() {
  // Membership changes apply at script barriers (single-threaded, fixed
  // ascending order), so the eager flow reconciliation — and anything it
  // transmits — is deterministic at every shard count.
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m]) endpoints_[m]->on_view_change();
  }
}

// ---- queries --------------------------------------------------------------

std::size_t Cluster::count_received(const MessageId& id) const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && endpoints_[m]->has_received(id)) ++n;
  }
  return n;
}

std::size_t Cluster::count_buffered(const MessageId& id) const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && endpoints_[m]->buffer().has(id)) ++n;
  }
  return n;
}

std::size_t Cluster::count_long_term(const MessageId& id) const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && endpoints_[m]->buffer().is_long_term(id)) ++n;
  }
  return n;
}

bool Cluster::all_received(const MessageId& id) const {
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && !endpoints_[m]->has_received(id)) return false;
  }
  return true;
}

std::vector<MemberId> Cluster::region_members(RegionId r) const {
  return topology_.members_of(r);
}

std::size_t Cluster::total_buffered() const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m]) n += endpoints_[m]->buffer().count();
  }
  return n;
}

}  // namespace rrmp::harness
