#include "harness/cluster.h"

#include <stdexcept>

namespace rrmp::harness {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      topology_(net::make_hierarchy(
          config_.region_sizes, config_.intra_rtt, config_.inter_one_way,
          config_.parents.empty() ? nullptr : &config_.parents)),
      directory_(topology_),
      master_rng_(config_.seed) {
  network_ = std::make_unique<net::SimNetwork>(sim_, topology_,
                                               master_rng_.fork(0xD00D));
  network_->set_control_loss(net::make_bernoulli(config_.control_loss));
  network_->set_latency_jitter(config_.jitter);
  network_->set_codec_roundtrip(config_.codec_roundtrip);

  std::size_t n = topology_.member_count();
  hosts_.resize(n);
  endpoints_.resize(n);
  removed_.assign(n, false);
  for (MemberId m = 0; m < n; ++m) spawn_member(m);
}

Cluster::~Cluster() {
  // Halt endpoints before the simulator dies so no timer callback can touch
  // a destroyed endpoint during teardown.
  for (auto& ep : endpoints_) {
    if (ep) ep->halt();
  }
}

void Cluster::spawn_member(MemberId m) {
  hosts_[m] = std::make_unique<SimHost>(m, *network_, directory_,
                                        master_rng_.fork(m + 1),
                                        config_.data_loss);
  auto policy = buffer::make_policy(config_.policy, config_.policy_params);
  endpoints_[m] = std::make_unique<Endpoint>(*hosts_[m], config_.protocol,
                                             std::move(policy), &metrics_);
  Endpoint* ep = endpoints_[m].get();
  hosts_[m]->set_receiver(
      [ep](const proto::Message& msg, MemberId from) {
        ep->handle_message(msg, from);
      });
  network_->attach(m, hosts_[m].get());
}

void Cluster::run_until_quiet(Duration cap) {
  TimePoint horizon = sim_.now() + cap;
  while (sim_.pending_count() > 0 && sim_.now() <= horizon) {
    sim_.step();
  }
}

MessageId Cluster::inject(MemberId source, std::uint64_t seq,
                          std::span<const MemberId> holders,
                          std::size_t payload_bytes) {
  MessageId id{source, seq};
  proto::Data data{id, std::vector<std::uint8_t>(payload_bytes, 0xAB)};
  std::vector<bool> is_holder(size(), false);
  for (MemberId h : holders) is_holder.at(h) = true;
  proto::Session session{source, seq};
  for (MemberId m = 0; m < size(); ++m) {
    if (removed_[m]) continue;
    if (is_holder[m]) {
      endpoints_[m]->handle_message(proto::Message{data}, source);
    } else {
      endpoints_[m]->handle_message(proto::Message{session}, source);
    }
  }
  return id;
}

MessageId Cluster::inject_data_to(MemberId source, std::uint64_t seq,
                                  std::span<const MemberId> holders,
                                  std::size_t payload_bytes) {
  MessageId id{source, seq};
  proto::Data data{id, std::vector<std::uint8_t>(payload_bytes, 0xAB)};
  for (MemberId m : holders) {
    if (!removed_.at(m)) {
      endpoints_[m]->handle_message(proto::Message{data}, source);
    }
  }
  return id;
}

void Cluster::inject_session_to(MemberId source, std::uint64_t seq,
                                std::span<const MemberId> members) {
  proto::Session session{source, seq};
  for (MemberId m : members) {
    if (!removed_.at(m)) {
      endpoints_[m]->handle_message(proto::Message{session}, source);
    }
  }
}

void Cluster::inject_remote_request(MemberId target, const MessageId& id,
                                    MemberId requester) {
  endpoints_.at(target)->handle_message(
      proto::Message{proto::RemoteRequest{id, requester}}, requester);
}

void Cluster::force_long_term(MemberId member, const MessageId& id) {
  Endpoint& ep = *endpoints_.at(member);
  std::optional<proto::Data> d = ep.buffer().get(id);
  if (!d) throw std::logic_error("force_long_term: message not buffered");
  ep.buffer().accept_handoff(*d);  // upgrades an existing entry to long-term
}

void Cluster::force_discard(MemberId member, const MessageId& id) {
  endpoints_.at(member)->buffer().force_discard(id);
}

void Cluster::leave(MemberId m) {
  if (removed_.at(m)) return;
  endpoints_[m]->leave();
  network_->detach(m);
  directory_.mark_left(m);
  removed_[m] = true;
}

void Cluster::crash(MemberId m) {
  if (removed_.at(m)) return;
  endpoints_[m]->halt();
  network_->detach(m);
  directory_.mark_failed(m);
  removed_[m] = true;
}

void Cluster::rejoin(MemberId m) {
  if (!removed_.at(m)) return;
  directory_.mark_joined(m);
  removed_[m] = false;
  spawn_member(m);
}

std::size_t Cluster::count_received(const MessageId& id) const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && endpoints_[m]->has_received(id)) ++n;
  }
  return n;
}

std::size_t Cluster::count_buffered(const MessageId& id) const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && endpoints_[m]->buffer().has(id)) ++n;
  }
  return n;
}

std::size_t Cluster::count_long_term(const MessageId& id) const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && endpoints_[m]->buffer().is_long_term(id)) ++n;
  }
  return n;
}

bool Cluster::all_received(const MessageId& id) const {
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m] && !endpoints_[m]->has_received(id)) return false;
  }
  return true;
}

std::vector<MemberId> Cluster::region_members(RegionId r) const {
  return topology_.members_of(r);
}

std::size_t Cluster::total_buffered() const {
  std::size_t n = 0;
  for (MemberId m = 0; m < size(); ++m) {
    if (!removed_[m]) n += endpoints_[m]->buffer().count();
  }
  return n;
}

}  // namespace rrmp::harness
