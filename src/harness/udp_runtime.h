// UdpRuntime: runs unmodified RRMP endpoints over real loopback UDP sockets
// (net::UdpBus) — the "same socket APIs" deployment of the protocol.
//
// One UdpBus carries all members; each member gets a UdpMemberHost that
// implements IHost by encoding messages through the wire codec and sending
// real datagrams. Topology latency is reproduced with the bus's delayed
// sends, so WAN timing holds on loopback. Membership is static (the
// directory's initial state); all endpoints run on the caller's thread via
// run_for().
#pragma once

#include <memory>
#include <vector>

#include "buffer/factory.h"
#include "membership/directory.h"
#include "net/topology.h"
#include "net/udp_host.h"
#include "rrmp/endpoint.h"
#include "rrmp/metrics.h"

namespace rrmp::harness {

struct UdpRuntimeConfig {
  std::uint16_t base_port = 37100;
  Config protocol;
  /// Self-describing buffer policy selection + knobs (Buffer API v2). The
  /// per-member budget rides in protocol.buffer_budget.
  buffer::PolicySpec policy = buffer::TwoPhaseParams{};
  std::uint64_t seed = 1;
  /// Per-receiver loss applied to ip_multicast fan-out (initial
  /// dissemination), as in the simulator.
  double data_loss = 0.0;
  /// Reproduce topology latencies with delayed sends (false = raw loopback).
  bool emulate_latency = true;
};

class UdpRuntime {
 public:
  /// Throws std::runtime_error if sockets cannot be bound.
  UdpRuntime(const net::Topology& topology, UdpRuntimeConfig config);
  ~UdpRuntime();

  UdpRuntime(const UdpRuntime&) = delete;
  UdpRuntime& operator=(const UdpRuntime&) = delete;

  Endpoint& endpoint(MemberId m) { return *endpoints_.at(m); }
  RecordingSink& metrics() { return metrics_; }
  net::UdpBus& bus() { return *bus_; }
  std::size_t size() const { return endpoints_.size(); }

  /// Service sockets and timers for `d` of wall-clock time.
  void run_for(Duration d);

  bool all_received(const MessageId& id) const;
  std::size_t count_received(const MessageId& id) const;

 private:
  class MemberHost;

  const net::Topology& topology_;
  UdpRuntimeConfig config_;
  membership::Directory directory_;
  std::unique_ptr<net::UdpBus> bus_;
  RecordingSink metrics_;
  std::vector<std::unique_ptr<MemberHost>> hosts_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace rrmp::harness
