// UdpRuntime: runs unmodified RRMP endpoints over real loopback UDP sockets
// (net::UdpBus) — the "same socket APIs" deployment of the protocol.
//
// Members are partitioned into contiguous chunks across `workers` event-loop
// threads (thread-per-core). Each worker owns one UdpBus that binds only its
// members' sockets (but can address every port in the group), one
// RecordingSink, and the endpoints of its members; the worker's poll loop
// services sockets and timers for exactly that set, so endpoint code runs
// lock-free. Cross-worker traffic travels through the kernel like any other
// datagram. run_for() drives all workers over a harness::ShardPool and is a
// full barrier, so between calls the caller may touch any endpoint safely.
//
// Receive is zero-copy end-to-end: UdpBus hands each worker SharedBytes
// views aliasing its preallocated segment ring, decode_shared() keeps
// payload blobs aliasing the same slot, and the slot is recycled only after
// the last reference (e.g. a buffered payload) is released.
//
// Topology latency is reproduced with the bus's delayed sends, so WAN
// timing holds on loopback. Membership is static (the directory's initial
// state).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "buffer/factory.h"
#include "harness/shard_pool.h"
#include "membership/directory.h"
#include "net/topology.h"
#include "net/udp_host.h"
#include "rrmp/endpoint.h"
#include "rrmp/metrics.h"

namespace rrmp::harness {

struct UdpRuntimeConfig {
  std::uint16_t base_port = 37100;
  Config protocol;
  /// Self-describing buffer policy selection + knobs (Buffer API v2). The
  /// per-member budget rides in protocol.buffer_budget.
  buffer::PolicySpec policy = buffer::TwoPhaseParams{};
  std::uint64_t seed = 1;
  /// Per-receiver loss applied to ip_multicast fan-out (initial
  /// dissemination), as in the simulator.
  double data_loss = 0.0;
  /// Deterministic drop schedule for the initial dissemination: when set,
  /// `drop_fn(seq, to)` replaces the Bernoulli data_loss draw — the same
  /// schedule the simulator applies via SimNetwork::set_data_drop_fn, so
  /// parity experiments lose exactly the same (message, receiver) pairs on
  /// both transports.
  std::function<bool(std::uint64_t seq, MemberId to)> drop_fn;
  /// Reproduce topology latencies with delayed sends (false = raw loopback).
  bool emulate_latency = true;
  /// Event-loop threads; members are partitioned contiguously across them.
  /// 1 = everything on the caller's thread (the pre-threading behaviour);
  /// 0 = one worker per hardware core.
  std::size_t workers = 1;
  /// Batching / segment-ring knobs forwarded to each worker's UdpBus.
  net::UdpBusConfig bus;
};

class UdpRuntime {
 public:
  /// Throws std::runtime_error if sockets cannot be bound.
  UdpRuntime(const net::Topology& topology, UdpRuntimeConfig config);
  ~UdpRuntime();

  UdpRuntime(const UdpRuntime&) = delete;
  UdpRuntime& operator=(const UdpRuntime&) = delete;

  Endpoint& endpoint(MemberId m) { return *endpoints_.at(m); }
  /// Merged metrics across workers (recomputed on demand; cheap at the
  /// single-worker default, a deterministic k-way merge otherwise).
  RecordingSink& metrics();
  net::UdpBus& bus(std::size_t worker = 0) { return *buses_.at(worker); }
  std::size_t size() const { return endpoints_.size(); }
  std::size_t worker_count() const { return buses_.size(); }
  std::size_t worker_of(MemberId m) const { return m / chunk_; }

  /// Aggregate syscall/datagram counters across worker buses.
  std::uint64_t datagrams_sent() const;
  std::uint64_t datagrams_received() const;

  /// Service sockets and timers for `d` of wall-clock time on every worker;
  /// returns after all workers reach the deadline (full barrier).
  void run_for(Duration d);

  bool all_received(const MessageId& id) const;
  std::size_t count_received(const MessageId& id) const;

 private:
  class MemberHost;

  const net::Topology& topology_;
  UdpRuntimeConfig config_;
  membership::Directory directory_;
  std::size_t chunk_ = 1;  // members per worker (last worker may own fewer)
  std::vector<std::unique_ptr<net::UdpBus>> buses_;
  std::vector<std::unique_ptr<RecordingSink>> sinks_;
  RecordingSink merged_;
  std::unique_ptr<ShardPool> pool_;
  std::vector<std::unique_ptr<MemberHost>> hosts_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace rrmp::harness
