#include "harness/shard_pool.h"

#include <algorithm>

namespace rrmp::harness {

ShardPool::ShardPool(std::size_t threads) {
  // The calling thread participates in every run(), so a pool of N execution
  // streams needs only N-1 dedicated workers; N <= 1 runs fully inline.
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ShardPool::resolve(std::size_t requested, std::size_t max_useful) {
  std::size_t n = requested;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::clamp<std::size_t>(n, 1, std::max<std::size_t>(1, max_useful));
}

void ShardPool::drain_tasks() {
  const auto& task = *task_;
  for (;;) {
    std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= task_count_) return;
    try {
      task(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain_tasks();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_busy_;
    }
    done_cv_.notify_one();
  }
}

void ShardPool::run(std::size_t count,
                    const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    task_count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    workers_busy_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  drain_tasks();  // the caller is one of the execution streams
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_busy_ == 0; });
    task_ = nullptr;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

}  // namespace rrmp::harness
