// Experiment drivers: one function per figure/ablation of the paper,
// shared by the bench binaries and the property tests.
//
// Every driver is deterministic in its seed. Times are reported in
// milliseconds, matching the paper's axes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "buffer/factory.h"
#include "rrmp/config.h"

namespace rrmp::harness {

// Paper defaults used throughout §4: region RTT 10 ms, T = 40 ms, C = 6.
struct ExperimentDefaults {
  Duration intra_rtt = Duration::millis(10);
  Duration idle_threshold = Duration::millis(40);
  double C = 6.0;
  /// Worker threads for trial-level fan-out in the sweep drivers
  /// (mean_search_ms): trials are independent clusters, so results are
  /// byte-identical for every value. 1 = sequential, 0 = hardware
  /// concurrency. Single-cluster drivers ignore this (pass
  /// ClusterConfig::shards for region-level sharding instead).
  std::size_t shards = 1;
};

// ---- Figure 6: feedback-based short-term buffering ----------------------

struct Fig6Result {
  std::size_t initial_holders = 0;
  /// Mean time the *initial* holders kept the message buffered before the
  /// idle decision (discard or long-term promotion), ms.
  double mean_buffer_ms = 0.0;
  std::size_t samples = 0;
};

Fig6Result run_fig6_point(std::size_t initial_holders, std::size_t region_size,
                          std::size_t trials, std::uint64_t seed,
                          const ExperimentDefaults& defaults = {});

// ---- Figure 7: #received vs #buffered over time --------------------------

struct Fig7Series {
  std::vector<double> t_ms;
  std::vector<std::size_t> received;
  std::vector<std::size_t> buffered;
};

Fig7Series run_fig7(std::size_t region_size, std::uint64_t seed,
                    Duration horizon, Duration sample_every,
                    const ExperimentDefaults& defaults = {});

// ---- Figures 8/9: search for bufferers -----------------------------------

struct SearchResult {
  double search_ms = 0.0;  // 0 when the request lands on a bufferer
  bool found = false;
};

/// One search trial: a region of `region_size` members where everyone
/// received and discarded the message except `bufferers` randomly chosen
/// long-term holders; a remote request from a downstream member arrives at
/// a random region member; returns the time until a bufferer repairs the
/// requester (§3.3, Figures 8/9).
SearchResult run_search_once(std::size_t region_size, std::size_t bufferers,
                             std::uint64_t seed,
                             const ExperimentDefaults& defaults = {});

/// Mean over `trials` independent seeds. Trials fan out across
/// `defaults.shards` worker threads; the sample order (and therefore the
/// mean) is identical for any shard count.
double mean_search_ms(std::size_t region_size, std::size_t bufferers,
                      std::size_t trials, std::uint64_t seed,
                      const ExperimentDefaults& defaults = {});

// ---- Figures 3/4: long-term bufferer distribution -------------------------

struct LongTermDistribution {
  std::vector<double> pmf;  // pmf[k] = P(k long-term bufferers), k <= max_k
  double p_none = 0.0;      // probability of zero bufferers
  double mean = 0.0;
};

/// Monte Carlo of the §3.2 randomized long-term decision across a region
/// (each member keeps an idle message with probability C/n). The policy-level
/// equivalent is validated in the integration tests; this samples the same
/// rule directly so the benches can afford millions of trials.
LongTermDistribution simulate_longterm_distribution(std::size_t region_size,
                                                    double C,
                                                    std::size_t trials,
                                                    std::uint64_t seed,
                                                    std::size_t max_k);

// ---- Ablation A3: expected remote requests == lambda ----------------------

struct LambdaResult {
  double mean_first_round = 0.0;  // remote requests in the first round
  double mean_recovery_ms = 0.0;  // until the region is fully repaired
};

LambdaResult run_lambda_experiment(double lambda, std::size_t region_size,
                                   std::size_t parent_size, std::size_t trials,
                                   std::uint64_t seed,
                                   const ExperimentDefaults& defaults = {});

// ---- Ablation A2: random search vs multicast query ------------------------

struct SearchStrategyOutcome {
  std::string strategy;
  double mean_replies = 0.0;    // repairs sent to the requester per search
  double mean_search_ms = 0.0;  // time to the first repair
};

/// `holders` of `region_size` members still buffer the message when the
/// query arrives at a member that discarded it prematurely. With many
/// holders the back-off window (proportional to C) is far too short and the
/// multicast query implodes (§3.3).
SearchStrategyOutcome run_search_strategy(Config::SearchStrategy strategy,
                                          std::size_t region_size,
                                          std::size_t holders,
                                          std::size_t trials,
                                          std::uint64_t seed,
                                          const ExperimentDefaults& defaults = {});

// ---- Ablation A4: buffer policy comparison on a lossy stream --------------

struct StreamScenario {
  std::size_t region_size = 60;
  std::size_t messages = 80;
  Duration send_interval = Duration::millis(5);
  double data_loss = 0.05;
  std::size_t payload_bytes = 256;
  Duration drain = Duration::millis(600);
  std::uint64_t seed = 1;
  /// Per-member buffer budget (zero fields = unlimited, the paper's runs).
  buffer::BufferBudget budget;
  /// Cooperative region-wide budget coordination (disabled = PR 4
  /// uncoordinated behaviour, bit for bit).
  buffer::CoordinationParams coordination;
};

struct PolicyOutcome {
  std::string policy;
  bool all_delivered = false;
  /// Fraction of streamed messages every alive member received.
  double delivered_fraction = 0.0;
  std::uint64_t unrecovered = 0;        // open recoveries at the end
  double peak_buffer_per_member = 0.0;  // max_m peak buffered msg count
  double peak_bytes_per_member = 0.0;   // max_m peak buffered bytes
  double mean_occupancy_per_member = 0.0;  // time-avg buffered msgs/member
  double final_buffered_total = 0.0;    // msgs still buffered at the end
  double mean_recovery_ms = 0.0;
  /// Detected losses that were eventually repaired, as a fraction (1.0 when
  /// nothing was lost).
  double recovery_success = 1.0;
  std::uint64_t evictions = 0;  // budget-forced departures across members
  std::uint64_t sheds = 0;      // budget-forced departures relocated to a
                                // neighbor (coordination only) — counted
                                // apart from evictions: these copies survive
  std::uint64_t rejected = 0;   // admissions refused (msg > whole budget)
  std::uint64_t control_msgs = 0;   // requests/search/session/history/gossip
  std::uint64_t control_bytes = 0;
  std::uint64_t repair_msgs = 0;
  std::uint64_t digest_msgs = 0;    // BufferDigest multicasts (coordination)
};

PolicyOutcome run_stream_scenario(buffer::PolicyKind kind,
                                  const StreamScenario& scenario,
                                  const ExperimentDefaults& defaults = {});

// ---- Extension: capacity sweep (Buffer API v2) -----------------------------

/// One point of the capacity sweep: the lossy stream scenario under a
/// per-member byte budget. As the budget shrinks below the working set the
/// paper's expected-C long-term copies imply, buffered copies are evicted
/// before requests arrive and recovery success degrades — the experiment
/// the budgeted BufferStore exists to ask.
struct CapacityOutcome {
  std::size_t budget_bytes = 0;  // 0 = unlimited
  double delivered_fraction = 0.0;
  double recovery_success = 1.0;
  double mean_recovery_ms = 0.0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unrecovered = 0;
  double peak_bytes_per_member = 0.0;
};

CapacityOutcome run_capacity_point(std::size_t budget_bytes,
                                   buffer::PolicyKind kind,
                                   const StreamScenario& scenario,
                                   const ExperimentDefaults& defaults = {});

// ---- Extension: cooperative budget coordination -----------------------------

/// One point of the coordination sweep: the capacity-sweep scenario under a
/// per-member byte budget, with or without cooperative region-wide budgets
/// (digest gossip + replica-aware eviction + shed handoffs). The paired
/// runs ask the tentpole question directly: at the same budget, does
/// coordinating *where* the region keeps its copies recover more losses
/// than members evicting blindly?
struct CoordinationOutcome {
  std::size_t budget_bytes = 0;  // 0 = unlimited
  bool coordinated = false;
  double delivered_fraction = 0.0;
  double recovery_success = 1.0;
  double mean_recovery_ms = 0.0;
  std::uint64_t evictions = 0;   // copies lost to budget pressure
  std::uint64_t sheds = 0;       // copies relocated instead of lost
  std::uint64_t rejected = 0;
  std::uint64_t unrecovered = 0;
  std::uint64_t digest_msgs = 0;  // coordination control overhead
  double peak_bytes_per_member = 0.0;
};

CoordinationOutcome run_coordination_point(
    std::size_t budget_bytes, bool coordinate, buffer::PolicyKind kind,
    const StreamScenario& scenario, const ExperimentDefaults& defaults = {});

// ---- Extension: flash-crowd overload (flow control) -------------------------

/// A flash crowd: `senders` members of one region all stream
/// `messages_per_sender` multicasts at the same instants into tight
/// per-member buffer budgets (coordination on). Without flow control every
/// budget overruns simultaneously and the region sheds copies it then cannot
/// recover; with it, windows pace the senders to what receivers absorb.
struct OverloadScenario {
  std::size_t region_size = 24;
  std::size_t messages_per_sender = 30;
  Duration send_interval = Duration::millis(2);
  double data_loss = 0.05;
  std::size_t payload_bytes = 512;
  /// Post-stream settle time. Must cover the credit-paced tail: a windowed
  /// sender still holds queued frames when the unpaced schedule ends.
  Duration drain = Duration::millis(1500);
  std::uint64_t seed = 1;
  std::size_t budget_bytes = 4096;  // per-member buffer budget
  std::uint32_t window_size = 8;
  std::size_t target_budget_bytes = 0;  // 0 = frames-only windowing
  Duration ack_interval = Duration::millis(5);

  /// AIMD window sizing + cursor piggybacking (the adaptive flow mode).
  /// All off by default: the static-window run is bit-identical to the
  /// pre-adaptive harness.
  bool adaptive = false;
  std::uint32_t min_window = 2;
  std::uint32_t max_window = 0;  // 0 = window_size is the ceiling
  bool piggyback = false;

  /// Churn axis: crash one non-sender receiver a third of the way through
  /// the burst and rejoin it two thirds through — the joiner-mid-flash-crowd
  /// case the churn-safe credit state exists for.
  bool churn = false;
};

struct OverloadOutcome {
  std::size_t senders = 0;
  bool flow_on = false;
  /// Fraction of all streamed messages every region member received.
  double goodput = 0.0;
  /// Jain's fairness index over per-sender fully-delivered counts (1 =
  /// perfectly even, 1/senders = one sender got everything through).
  double fairness = 1.0;
  std::uint64_t deferred = 0;     // multicasts queued awaiting credit
  std::uint64_t credit_msgs = 0;  // CreditAck multicasts on the wire
  std::uint64_t evictions = 0;
  std::uint64_t sheds = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unrecovered = 0;
  std::uint64_t credit_bytes = 0;       // CreditAck wire bytes
  std::uint64_t acks_suppressed = 0;    // piggyback-suppressed CreditAcks
  std::uint64_t stall_remcasts = 0;     // sender stall re-multicasts
  std::uint64_t stall_releases = 0;     // stalled-cursor releases (churn)
  /// Senders that completed their full schedule (send_seq reached the
  /// scenario's messages_per_sender) — the churn liveness witness: a
  /// wedged window leaves frames queued forever.
  std::size_t senders_completed = 0;
  /// Payload bytes of fully-delivered streams (the goodput numerator in
  /// bytes) — the control-overhead denominator.
  std::uint64_t delivered_payload_bytes = 0;
  /// CreditAck bytes per delivered payload byte: what the credit channel
  /// costs per byte of useful, fully-delivered stream. 0 when nothing was
  /// delivered.
  double control_overhead = 0.0;
};

OverloadOutcome run_overload_point(std::size_t senders, bool flow_on,
                                   const OverloadScenario& scenario,
                                   const ExperimentDefaults& defaults = {});

// ---- Extension: fault-injection degradation sweep ---------------------------

/// The degradation grid: one flash-crowd workload (budget coordination +
/// windowed flow control on) per hostile-network cell. Each cell builds its
/// fault timeline programmatically with FaultScript, so the sweep exercises
/// the scripted-fault path end to end, not just the primitives.
enum class FaultCell {
  kClean,       ///< no faults: the control every other cell degrades from
  kPartition,   ///< minority receiver group severed a third into the burst,
                ///< healed when the burst ends — recovery must complete
                ///< during drain
  kLossyEdge,   ///< ~10% of receivers behind persistently lossy links
  kChurnStorm,  ///< half the non-sender receivers crash a third into the
                ///< burst and rejoin two thirds through
  kDigestLoss,  ///< control-plane loss spike mid-burst (digests, credit
                ///< acks, requests and repairs all drop), restored two
                ///< thirds through
};

const char* fault_cell_name(FaultCell cell);

struct FaultScenario {
  std::size_t region_size = 24;
  std::size_t senders = 4;
  std::size_t messages_per_sender = 30;
  Duration send_interval = Duration::millis(2);
  double data_loss = 0.05;
  std::size_t payload_bytes = 512;
  /// Post-burst settle time. Must cover post-heal backfill — partitioned and
  /// rejoined members recover their missed tail here — not just the
  /// credit-paced send tail.
  Duration drain = Duration::millis(2500);
  std::uint64_t seed = 1;
  std::size_t budget_bytes = 4096;  // per-member buffer budget
  std::uint32_t window_size = 8;
  Duration ack_interval = Duration::millis(5);

  // Cell knobs.
  double edge_loss = 0.10;       ///< kLossyEdge per-link drop rate
  double lossy_fraction = 0.10;  ///< fraction of members behind lossy edges
  double churn_fraction = 0.50;  ///< fraction of non-senders crashed
  double spike_loss = 0.60;      ///< kDigestLoss control-plane loss rate
};

struct FaultOutcome {
  FaultCell cell = FaultCell::kClean;
  std::size_t senders = 0;
  /// Fraction of all streamed messages every *alive* region member received.
  double goodput = 0.0;
  /// Jain's fairness index over per-sender fully-delivered counts.
  double fairness = 1.0;
  /// Detected losses eventually repaired, as a fraction (1.0 when nothing
  /// was lost). Members that crash with open recoveries leave them
  /// unrepaired by construction, so the churn cell sits below 1.0.
  double recovery_success = 1.0;
  double mean_recovery_ms = 0.0;
  /// Open recoveries at the end on members that kept their state (never
  /// crashed): the post-heal liveness witness — every cell must drain this
  /// to zero. Partitioned members count here: a partition severs links, not
  /// state, so their backfill must always complete.
  std::uint64_t unrecovered = 0;
  /// Open recoveries at the end on crash-and-rejoined members. A rejoiner
  /// starts empty and backfills its pre-crash history from whatever copies
  /// the region still holds; under budget pressure some of that history is
  /// legitimately gone, and the exhausted recovery tasks stay counted here.
  std::uint64_t unrecovered_rejoined = 0;
  /// Senders whose full schedule went out (a wedged flow window leaves
  /// frames queued forever).
  std::size_t senders_completed = 0;
  std::uint64_t severed = 0;    // packets dropped at the partition wall
  std::uint64_t deferred = 0;   // multicasts queued awaiting credit
  std::uint64_t stall_releases = 0;  // stalled-cursor credit releases
  std::uint64_t evictions = 0;
  std::uint64_t sheds = 0;
};

FaultOutcome run_fault_cell(FaultCell cell, const FaultScenario& scenario,
                            const ExperimentDefaults& defaults = {});

// ---- Extension: hierarchical repair makespan --------------------------------

/// One point of the repair-tree makespan sweep: a complete `fanout`-ary
/// region tree `depth` levels deep below the root, `region_size` members
/// per region, hierarchical repair on. Only the root region holds the
/// message at t=0; every other member learns of it via Session and must
/// recover it through the repair tree (region representative -> parent
/// representative -> ... -> root). Makespan = time of the last delivery.
struct MakespanScenario {
  std::size_t fanout = 2;
  std::size_t depth = 2;  ///< region-tree levels below the root region
  std::size_t region_size = 12;
  std::uint64_t seed = 1;
  Duration quiet_cap = Duration::seconds(120);
  /// Worker threads for the per-epoch lane loop (ClusterConfig::shards).
  std::size_t shards = 1;
  /// Sub-shard regions larger than this many members into chunk lanes
  /// (ClusterConfig::sub_shard_members); 0 = one lane per region.
  std::size_t sub_shard_members = 0;
  std::size_t payload_bytes = 64;
};

struct MakespanOutcome {
  std::size_t members = 0;
  std::size_t regions = 0;
  bool all_recovered = false;
  double makespan_ms = 0.0;  ///< simulated time of the last delivery
  std::uint64_t local_requests = 0;
  std::uint64_t remote_requests = 0;  ///< Escalates + root-fallback requests
  std::uint64_t events = 0;           ///< simulator events fired (witness)
};

MakespanOutcome run_makespan_point(const MakespanScenario& scenario,
                                   const ExperimentDefaults& defaults = {});

// ---- Ablation A5: handoff under churn --------------------------------------

struct ChurnOutcome {
  std::size_t trials = 0;
  std::size_t recovered = 0;  // late request answered despite bufferer churn
  double mean_recovery_ms = 0.0;
};

/// All long-term bufferers of a message depart; `with_handoff` uses graceful
/// leaves (buffers transfer, §3.2), otherwise crashes. A downstream request
/// then probes whether the message survived.
ChurnOutcome run_churn_handoff(bool with_handoff, std::size_t region_size,
                               std::size_t trials, std::uint64_t seed,
                               const ExperimentDefaults& defaults = {});

// ---- Ablation A1: feedback formula -----------------------------------------

/// Monte Carlo of §3.1: fraction of members receiving zero requests when
/// n*p members each send one request to a uniformly random other member.
double simulate_no_request_probability(std::size_t region_size, double p,
                                       std::size_t trials, std::uint64_t seed);

}  // namespace rrmp::harness
