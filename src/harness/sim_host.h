// SimHost: IHost implementation backed by the discrete-event simulator.
//
// One SimHost per member. Views come from the ground-truth Directory,
// filtered by this member's *local* suspicions (set by its gossip failure
// detector), so a member that suspects a peer stops picking it as a
// recovery/search target even before the rest of the cluster notices.
#pragma once

#include <functional>
#include <unordered_set>

#include "membership/directory.h"
#include "net/sim_network.h"
#include "rrmp/host.h"

namespace rrmp::harness {

class SimHost final : public IHost, public net::MessageHandler {
 public:
  /// Timers are scheduled on the member's region-lane simulator
  /// (network.simulator_for(self)), so a host never touches another lane's
  /// event queue and regions can run on concurrent shard workers.
  SimHost(MemberId self, net::SimNetwork& network,
          const membership::Directory& directory, RandomEngine rng,
          double data_loss_rate);

  /// Route incoming messages to the owning endpoint.
  using Receiver = std::function<void(const proto::Message&, MemberId from)>;
  void set_receiver(Receiver fn) { receiver_ = std::move(fn); }

  // IHost
  MemberId self() const override { return self_; }
  RegionId region() const override { return region_; }
  TimePoint now() const override;
  TimerHandle schedule(Duration d, std::function<void()> fn) override;
  void cancel(TimerHandle timer) override;
  void send(MemberId to, proto::Message msg) override;
  void multicast_region(proto::Message msg) override;
  void ip_multicast(proto::Message msg) override;
  RandomEngine& rng() override { return rng_; }
  const membership::RegionView& local_view() const override;
  const membership::RegionView& parent_view() const override;
  Duration rtt_estimate(MemberId peer) const override;
  /// Both terms are monotone non-decreasing, so any view-affecting change
  /// strictly advances the sum.
  std::uint64_t view_epoch() const override {
    return directory_.version() + suspicion_epoch_;
  }

  // net::MessageHandler
  void on_message(const proto::Message& msg, MemberId from) override;

  /// Local failure-detector verdicts; filtered out of this member's views.
  void set_suspected(MemberId m, bool suspected);
  bool suspects(MemberId m) const { return suspected_.count(m) > 0; }

  /// Per-receiver loss of this member's initial IP multicast (fault
  /// injection may change it mid-run, at script barriers).
  void set_data_loss(double rate) { data_loss_rate_ = rate; }
  double data_loss() const { return data_loss_rate_; }

 private:
  void refresh_views() const;

  MemberId self_;
  RegionId region_;
  net::SimNetwork& network_;
  sim::Simulator& sim_;  // this member's region lane
  const membership::Directory& directory_;
  RandomEngine rng_;
  double data_loss_rate_;
  Receiver receiver_;
  std::unordered_set<MemberId> suspected_;

  // View caches, rebuilt when the directory version or suspicions change.
  mutable membership::RegionView local_cache_;
  mutable membership::RegionView parent_cache_;
  mutable std::uint64_t cached_version_ = 0;
  std::uint64_t suspicion_epoch_ = 1;
  mutable std::uint64_t cached_suspicion_epoch_ = 0;
};

}  // namespace rrmp::harness
