#include "harness/fault_script.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/cluster.h"

namespace rrmp::harness {
namespace {

struct ParseError {
  std::string reason;
};

[[noreturn]] void fail(const std::string& reason) { throw ParseError{reason}; }

std::uint64_t parse_uint(std::string_view s, const char* what) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    fail(std::string("bad ") + what + " '" + std::string(s) + "'");
  }
  return value;
}

TimePoint parse_time(std::string_view s) {
  std::int64_t scale = 1000;  // default unit: ms
  if (s.size() >= 2 && s.substr(s.size() - 2) == "us") {
    scale = 1;
    s.remove_suffix(2);
  } else if (s.size() >= 2 && s.substr(s.size() - 2) == "ms") {
    scale = 1000;
    s.remove_suffix(2);
  } else if (s.size() >= 1 && s.back() == 's') {
    scale = 1000000;
    s.remove_suffix(1);
  }
  if (s.empty()) fail("bad time (empty value)");
  return TimePoint::from_us(
      static_cast<std::int64_t>(parse_uint(s, "time")) * scale);
}

double parse_rate(std::string_view s) {
  // std::from_chars for doubles is still spotty across standard libraries;
  // strtod on a bounded copy is portable and just as strict here.
  std::string copy(s);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    fail("bad rate '" + copy + "'");
  }
  if (value < 0.0 || value > 1.0) fail("rate must be in [0, 1]");
  return value;
}

// Comma-separated ids and inclusive ranges: "3,5,7-9".
std::vector<MemberId> parse_members(std::string_view s) {
  std::vector<MemberId> out;
  while (!s.empty()) {
    std::size_t comma = s.find(',');
    std::string_view item = s.substr(0, comma);
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
    if (item.empty()) fail("empty member list item");
    std::size_t dash = item.find('-');
    if (dash == std::string_view::npos) {
      out.push_back(static_cast<MemberId>(parse_uint(item, "member id")));
      continue;
    }
    auto first =
        static_cast<MemberId>(parse_uint(item.substr(0, dash), "member id"));
    auto last =
        static_cast<MemberId>(parse_uint(item.substr(dash + 1), "member id"));
    if (last < first) fail("descending range '" + std::string(item) + "'");
    for (MemberId m = first; m <= last; ++m) out.push_back(m);
  }
  if (out.empty()) fail("empty member list");
  return out;
}

// Member lists separated by '|': "0-5|6-11".
std::vector<std::vector<MemberId>> parse_groups(std::string_view s) {
  std::vector<std::vector<MemberId>> groups;
  while (true) {
    std::size_t bar = s.find('|');
    groups.push_back(parse_members(s.substr(0, bar)));
    if (bar == std::string_view::npos) break;
    s = s.substr(bar + 1);
  }
  return groups;
}

struct Fields {
  bool has(const char* key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return true;
    }
    return false;
  }
  std::string_view get(const char* key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    fail(std::string("missing ") + key + "=");
  }
  std::vector<std::pair<std::string_view, std::string_view>> kv;
};

FaultEvent parse_event_line(std::string_view line) {
  Fields fields;
  std::string_view rest = line;
  while (!rest.empty()) {
    std::size_t start = rest.find_first_not_of(" \t");
    if (start == std::string_view::npos) break;
    rest = rest.substr(start);
    std::size_t end = rest.find_first_of(" \t");
    std::string_view token = rest.substr(0, end);
    rest = end == std::string_view::npos ? std::string_view{}
                                         : rest.substr(end);
    std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      fail("expected key=value, got '" + std::string(token) + "'");
    }
    fields.kv.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }

  FaultEvent ev;
  ev.at = parse_time(fields.get("at"));
  std::string_view kind = fields.get("event");
  if (kind == "crash") {
    ev.kind = FaultEvent::Kind::kCrash;
    ev.members = parse_members(fields.get("members"));
  } else if (kind == "rejoin") {
    ev.kind = FaultEvent::Kind::kRejoin;
    ev.members = parse_members(fields.get("members"));
  } else if (kind == "leave") {
    ev.kind = FaultEvent::Kind::kLeave;
    ev.members = parse_members(fields.get("members"));
  } else if (kind == "partition") {
    ev.kind = FaultEvent::Kind::kPartition;
    ev.groups = parse_groups(fields.get("groups"));
  } else if (kind == "heal") {
    ev.kind = FaultEvent::Kind::kHeal;
  } else if (kind == "data-loss") {
    ev.kind = FaultEvent::Kind::kDataLoss;
    ev.rate = parse_rate(fields.get("rate"));
    if (fields.has("members")) {
      ev.members = parse_members(fields.get("members"));
    }
  } else if (kind == "control-loss") {
    ev.kind = FaultEvent::Kind::kControlLoss;
    ev.rate = parse_rate(fields.get("rate"));
  } else if (kind == "link-loss") {
    ev.kind = FaultEvent::Kind::kLinkLoss;
    ev.members = parse_members(fields.get("members"));
    ev.rate = parse_rate(fields.get("rate"));
    if (fields.has("src")) {
      ev.src = static_cast<MemberId>(parse_uint(fields.get("src"), "src"));
    }
  } else {
    fail("unknown event '" + std::string(kind) + "'");
  }
  return ev;
}

void check_members(const std::vector<MemberId>& members, std::size_t size,
                   const FaultEvent& ev) {
  for (MemberId m : members) {
    if (m >= size) {
      throw std::invalid_argument(
          std::string("fault script: ") + fault_event_kind_name(ev.kind) +
          " targets member " + std::to_string(m) + " of a " +
          std::to_string(size) + "-member cluster");
    }
  }
}

}  // namespace

const char* fault_event_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRejoin: return "rejoin";
    case FaultEvent::Kind::kLeave: return "leave";
    case FaultEvent::Kind::kPartition: return "partition";
    case FaultEvent::Kind::kHeal: return "heal";
    case FaultEvent::Kind::kDataLoss: return "data-loss";
    case FaultEvent::Kind::kControlLoss: return "control-loss";
    case FaultEvent::Kind::kLinkLoss: return "link-loss";
  }
  return "?";
}

FaultScript& FaultScript::crash(TimePoint at, std::vector<MemberId> members) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kCrash;
  ev.members = std::move(members);
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::rejoin(TimePoint at, std::vector<MemberId> members) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kRejoin;
  ev.members = std::move(members);
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::leave(TimePoint at, std::vector<MemberId> members) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kLeave;
  ev.members = std::move(members);
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::partition(TimePoint at,
                                    std::vector<std::vector<MemberId>> groups) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kPartition;
  ev.groups = std::move(groups);
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::heal(TimePoint at) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kHeal;
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::data_loss(TimePoint at, double rate,
                                    std::vector<MemberId> senders) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kDataLoss;
  ev.rate = rate;
  ev.members = std::move(senders);
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::control_loss(TimePoint at, double rate) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kControlLoss;
  ev.rate = rate;
  events_.push_back(std::move(ev));
  return *this;
}

FaultScript& FaultScript::link_loss(TimePoint at,
                                    std::vector<MemberId> members, double rate,
                                    MemberId src) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultEvent::Kind::kLinkLoss;
  ev.members = std::move(members);
  ev.rate = rate;
  ev.src = src;
  events_.push_back(std::move(ev));
  return *this;
}

void FaultScript::schedule_on(Cluster& cluster) const {
  for (const FaultEvent& ev : events_) {
    check_members(ev.members, cluster.size(), ev);
    for (const std::vector<MemberId>& g : ev.groups) {
      check_members(g, cluster.size(), ev);
    }
    if (ev.src != kInvalidMember && ev.src >= cluster.size()) {
      throw std::invalid_argument("fault script: link-loss src " +
                                  std::to_string(ev.src) + " out of range");
    }
    // The lambda copies the event: the script may outlive this FaultScript.
    cluster.schedule_script(ev.at, [&cluster, ev] {
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash:
          for (MemberId m : ev.members) cluster.crash(m);
          break;
        case FaultEvent::Kind::kRejoin:
          for (MemberId m : ev.members) cluster.rejoin(m);
          break;
        case FaultEvent::Kind::kLeave:
          for (MemberId m : ev.members) cluster.leave(m);
          break;
        case FaultEvent::Kind::kPartition:
          cluster.partition(ev.groups);
          break;
        case FaultEvent::Kind::kHeal:
          cluster.heal();
          break;
        case FaultEvent::Kind::kDataLoss:
          if (ev.members.empty()) {
            cluster.set_data_loss(ev.rate);
          } else {
            for (MemberId m : ev.members) {
              cluster.set_member_data_loss(m, ev.rate);
            }
          }
          break;
        case FaultEvent::Kind::kControlLoss:
          cluster.set_control_loss(ev.rate);
          break;
        case FaultEvent::Kind::kLinkLoss:
          if (ev.src == kInvalidMember) {
            cluster.set_lossy_members(ev.members, ev.rate);
          } else {
            for (MemberId m : ev.members) {
              cluster.set_link_loss(ev.src, m, ev.rate);
            }
          }
          break;
      }
    });
  }
}

std::optional<FaultScript> FaultScript::parse(std::string_view text,
                                              std::string* error) {
  FaultScript script;
  std::size_t line_no = 0;
  while (!text.empty()) {
    std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{}
                                        : text.substr(nl + 1);
    ++line_no;
    std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    std::size_t last = line.find_last_not_of(" \t\r");
    if (last == std::string_view::npos) continue;  // blank or comment-only
    line = line.substr(0, last + 1);
    try {
      script.events_.push_back(parse_event_line(line));
    } catch (const ParseError& e) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + e.reason;
      }
      return std::nullopt;
    }
  }
  return script;
}

std::optional<FaultScript> FaultScript::parse_file(const std::string& path,
                                                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot read '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), error);
}

}  // namespace rrmp::harness
