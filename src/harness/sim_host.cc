#include "harness/sim_host.h"

namespace rrmp::harness {

SimHost::SimHost(MemberId self, net::SimNetwork& network,
                 const membership::Directory& directory, RandomEngine rng,
                 double data_loss_rate)
    : self_(self),
      region_(directory.region_of(self)),
      network_(network),
      sim_(network.simulator_for(self)),
      directory_(directory),
      rng_(std::move(rng)),
      data_loss_rate_(data_loss_rate) {}

TimePoint SimHost::now() const { return sim_.now(); }

TimerHandle SimHost::schedule(Duration d, std::function<void()> fn) {
  return sim_.schedule_after(d, std::move(fn)).value;
}

void SimHost::cancel(TimerHandle timer) { sim_.cancel(sim::TimerId{timer}); }

void SimHost::send(MemberId to, proto::Message msg) {
  network_.unicast(self_, to, std::move(msg));
}

void SimHost::multicast_region(proto::Message msg) {
  network_.multicast_region(self_, std::move(msg));
}

void SimHost::ip_multicast(proto::Message msg) {
  network_.ip_multicast(self_, msg, data_loss_rate_);
}

void SimHost::refresh_views() const {
  if (cached_version_ == directory_.version() &&
      cached_suspicion_epoch_ == suspicion_epoch_) {
    return;
  }
  cached_version_ = directory_.version();
  cached_suspicion_epoch_ = suspicion_epoch_;

  std::vector<MemberId> local;
  for (MemberId m : directory_.region_view(region_).members()) {
    if (m == self_ || !suspected_.count(m)) local.push_back(m);
  }
  local_cache_ = membership::RegionView(std::move(local));

  std::vector<MemberId> parent;
  for (MemberId m : directory_.parent_view(region_).members()) {
    if (!suspected_.count(m)) parent.push_back(m);
  }
  parent_cache_ = membership::RegionView(std::move(parent));
}

const membership::RegionView& SimHost::local_view() const {
  refresh_views();
  return local_cache_;
}

const membership::RegionView& SimHost::parent_view() const {
  refresh_views();
  return parent_cache_;
}

Duration SimHost::rtt_estimate(MemberId peer) const {
  return network_.topology().rtt(self_, peer);
}

void SimHost::on_message(const proto::Message& msg, MemberId from) {
  if (receiver_) receiver_(msg, from);
}

void SimHost::set_suspected(MemberId m, bool suspected) {
  bool changed =
      suspected ? suspected_.insert(m).second : suspected_.erase(m) > 0;
  if (changed) ++suspicion_epoch_;
}

}  // namespace rrmp::harness
