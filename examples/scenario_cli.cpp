// scenario_cli — run a configurable RRMP scenario from the command line.
//
//   $ ./scenario_cli --regions=30,20 --messages=50 --loss=0.2
//                    --policy=two-phase --C=6 --T=40 --lambda=1 --seed=7
//   $ ./scenario_cli --policy=fixed-time --ttl=120 --buffer-bytes=16384
//   $ ./scenario_cli --policy=stability --csv
//
// Streams `--messages` multicasts from member 0 through the simulated
// cluster and reports delivery, buffer and traffic statistics — the knobs a
// downstream user would want to sweep without writing code.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/stats.h"
#include "analysis/table.h"
#include "harness/cluster.h"
#include "harness/fault_script.h"

using namespace rrmp;

namespace {

struct Options {
  std::vector<std::size_t> regions = {30, 20};
  std::size_t messages = 50;
  double loss = 0.1;
  double control_loss = 0.0;
  std::string policy = "two-phase";
  double c = 6.0;
  std::int64_t t_ms = 40;
  std::int64_t ttl_ms = 100;       // fixed-time TTL
  std::size_t hash_k = 6;          // hash-based bufferers per message
  std::int64_t grace_ms = 40;      // hash-based non-bufferer grace
  std::size_t buffer_bytes = 0;    // per-member byte budget, 0 = unlimited
  std::size_t buffer_count = 0;    // per-member entry budget, 0 = unlimited
  bool coordinate = false;         // cooperative region-wide budgets
  std::int64_t digest_ms = 20;     // BufferDigest gossip period
  std::size_t redundancy = 2;      // replicas before an entry is expendable
  bool no_shed = false;            // disable sole-copy shed handoffs
  bool flow = false;               // windowed send admission (flow control)
  std::size_t window = 32;         // outstanding-frame window per sender
  std::size_t target_budget = 0;   // outstanding-byte cap, 0 = frames only
  std::int64_t ack_ms = 10;        // CreditAck feedback period
  bool no_backpressure = false;    // disable occupancy-driven window halving
  bool adaptive = false;           // AIMD window sizing (--window = ceiling)
  std::size_t min_window = 2;      // AIMD lower bound / starting window
  std::size_t max_window = 0;      // AIMD ceiling override, 0 = --window
  bool piggyback = false;          // cursors ride on Data/Session frames
  bool stall_backoff = false;      // exponential stall-remulticast pacing
  bool hierarchy = false;          // multi-level repair over the region tree
  std::size_t fanout = 2;          // children per region when --depth > 0
  std::size_t depth = 0;           // region-tree depth, 0 = flat --regions
  std::size_t sub_shard = 0;       // split regions larger than N across lanes
  std::string fault_script;   // timeline spec file (see harness/fault_script.h)
  std::string partition;      // partition groups applied at t=0: 0-5|6-11
  std::string lossy_members;  // lossy-edge receivers from t=0: 3,5,7-9
  double lossy_rate = 0.1;    // per-link drop rate for --lossy-members
  double lambda = 1.0;
  std::uint64_t seed = 1;
  std::size_t payload = 256;
  std::int64_t interval_ms = 5;
  std::int64_t drain_ms = 800;
  bool csv = false;
  bool help = false;
};

void print_usage() {
  std::printf(
      "usage: scenario_cli [options]\n"
      "  --regions=N1,N2,...   region sizes, region 0 is the root (30,20)\n"
      "  --messages=N          messages streamed from member 0 (50)\n"
      "  --loss=P              per-receiver loss of initial multicast (0.1)\n"
      "  --control-loss=P      loss on requests/repairs (0)\n"
      "  --policy=NAME         two-phase|fixed-time|buffer-everything|\n"
      "                        hash-based|stability (two-phase)\n"
      "  --C=X                 expected long-term bufferers per region (6)\n"
      "  --T=MS                idle threshold in ms (40)\n"
      "  --ttl=MS              fixed-time policy TTL in ms (100)\n"
      "  --k=N                 hash-based bufferers per message (6)\n"
      "  --grace=MS            hash-based non-bufferer grace in ms (40)\n"
      "  --buffer-bytes=N      per-member buffer budget in wire bytes\n"
      "                        (0 = unlimited)\n"
      "  --buffer-count=N      per-member buffer budget in messages\n"
      "                        (0 = unlimited)\n"
      "  --coordinate          cooperative region-wide budgets: digest\n"
      "                        gossip, replica-aware eviction, shed handoffs\n"
      "  --digest-interval=MS  BufferDigest gossip period (20)\n"
      "  --redundancy=N        known replicas before an entry is an\n"
      "                        eviction-preferred victim (2)\n"
      "  --no-shed             keep coordination but disable sole-copy\n"
      "                        shed handoffs\n"
      "  --flow                windowed send admission with credit-based\n"
      "                        feedback (CreditAck gossip)\n"
      "  --window=N            outstanding-frame window per sender (32)\n"
      "  --target-budget=N     cap on outstanding wire bytes per sender\n"
      "                        (0 = frames-only windowing)\n"
      "  --ack-interval=MS     CreditAck feedback period (10)\n"
      "  --no-backpressure     keep flow control but disable the\n"
      "                        occupancy-driven window halving\n"
      "  --adaptive-window     AIMD window sizing: grow one frame per clean\n"
      "                        credit round, halve on stall; --window\n"
      "                        becomes the ceiling\n"
      "  --min-window=N        AIMD lower bound and starting window (2)\n"
      "  --max-window=N        AIMD ceiling override (0 = use --window)\n"
      "  --piggyback           ride receive cursors on outgoing Data/Session\n"
      "                        frames; CreditAck becomes a quiet-receiver\n"
      "                        fallback\n"
      "  --stall-backoff       double the stall re-multicast interval per\n"
      "                        consecutive re-multicast of the same wedged\n"
      "                        frame (reset when the floor advances)\n"
      "  --hierarchy           multi-level repair: per-region representatives\n"
      "                        answer local NAKs and escalate misses up the\n"
      "                        region tree instead of going to the sender\n"
      "  --depth=N             build a complete region tree of depth N (every\n"
      "                        region sized like the first --regions entry);\n"
      "                        0 = use --regions as flat regions (0)\n"
      "  --fanout=N            children per region when --depth > 0 (2)\n"
      "  --sub-shard=N         split regions larger than N members across\n"
      "                        simulation lanes (0 = one lane per region)\n"
      "  --fault-script=FILE   scripted fault timeline: crash/rejoin storms,\n"
      "                        partitions, heals, loss changes at absolute\n"
      "                        sim times (grammar in harness/fault_script.h)\n"
      "  --partition=GROUPS    sever traffic between member groups from t=0,\n"
      "                        e.g. 0-5|6-11 (unlisted members form one\n"
      "                        implicit extra group); heal via --fault-script\n"
      "  --lossy-members=LIST  every link into each listed member drops with\n"
      "                        --lossy-rate from t=0, e.g. 3,5,7-9\n"
      "  --lossy-rate=P        drop rate for --lossy-members links (0.1)\n"
      "  --lambda=X            expected remote requests per regional loss (1)\n"
      "  --payload=BYTES       message payload size (256)\n"
      "  --interval=MS         send interval (5)\n"
      "  --drain=MS            post-stream settle time (800)\n"
      "  --seed=N              master seed (1)\n"
      "  --csv                 emit CSV instead of an aligned table\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&](const char* prefix, std::string& out) {
      std::size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        out = arg.substr(n);
        return true;
      }
      return false;
    };
    std::string v;
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (eat("--regions=", v)) {
      opt.regions.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        opt.regions.push_back(std::strtoull(tok.c_str(), nullptr, 10));
      }
      if (opt.regions.empty() || opt.regions[0] == 0) {
        std::fprintf(stderr, "bad --regions\n");
        return false;
      }
    } else if (eat("--messages=", v)) {
      opt.messages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--loss=", v)) {
      opt.loss = std::strtod(v.c_str(), nullptr);
    } else if (eat("--control-loss=", v)) {
      opt.control_loss = std::strtod(v.c_str(), nullptr);
    } else if (eat("--policy=", v)) {
      opt.policy = v;
    } else if (eat("--C=", v)) {
      opt.c = std::strtod(v.c_str(), nullptr);
    } else if (eat("--T=", v)) {
      opt.t_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (eat("--ttl=", v)) {
      opt.ttl_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (eat("--k=", v)) {
      opt.hash_k = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--grace=", v)) {
      opt.grace_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (eat("--buffer-bytes=", v)) {
      opt.buffer_bytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--buffer-count=", v)) {
      opt.buffer_count = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--coordinate") {
      opt.coordinate = true;
    } else if (eat("--digest-interval=", v)) {
      opt.digest_ms = std::strtoll(v.c_str(), nullptr, 10);
      if (opt.digest_ms <= 0) {
        // A non-positive period would reschedule digest_tick at the same
        // virtual instant forever and the simulation would never advance.
        std::fprintf(stderr, "--digest-interval must be positive\n");
        return false;
      }
    } else if (eat("--redundancy=", v)) {
      opt.redundancy = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--no-shed") {
      opt.no_shed = true;
    } else if (arg == "--flow") {
      opt.flow = true;
    } else if (eat("--window=", v)) {
      opt.window = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--target-budget=", v)) {
      opt.target_budget = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--ack-interval=", v)) {
      opt.ack_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (arg == "--no-backpressure") {
      opt.no_backpressure = true;
    } else if (arg == "--adaptive-window") {
      opt.adaptive = true;
    } else if (eat("--min-window=", v)) {
      opt.min_window = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--max-window=", v)) {
      opt.max_window = std::strtoull(v.c_str(), nullptr, 10);
    } else if (arg == "--piggyback") {
      opt.piggyback = true;
    } else if (arg == "--stall-backoff") {
      opt.stall_backoff = true;
    } else if (arg == "--hierarchy") {
      opt.hierarchy = true;
    } else if (eat("--fanout=", v)) {
      opt.fanout = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--depth=", v)) {
      opt.depth = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--sub-shard=", v)) {
      opt.sub_shard = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--fault-script=", v)) {
      opt.fault_script = v;
    } else if (eat("--partition=", v)) {
      opt.partition = v;
    } else if (eat("--lossy-members=", v)) {
      opt.lossy_members = v;
    } else if (eat("--lossy-rate=", v)) {
      opt.lossy_rate = std::strtod(v.c_str(), nullptr);
    } else if (eat("--lambda=", v)) {
      opt.lambda = std::strtod(v.c_str(), nullptr);
    } else if (eat("--payload=", v)) {
      opt.payload = std::strtoull(v.c_str(), nullptr, 10);
    } else if (eat("--interval=", v)) {
      opt.interval_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (eat("--drain=", v)) {
      opt.drain_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (eat("--seed=", v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Cross-knob sanity checks. parse_args catches per-flag syntax; this
/// rejects combinations that would silently produce a meaningless run.
bool validate(const Options& opt) {
  auto fail = [](const char* msg) {
    std::fprintf(stderr, "%s\n", msg);
    return false;
  };
  if (opt.messages == 0) return fail("--messages must be positive");
  if (opt.payload == 0) return fail("--payload must be positive");
  if (opt.interval_ms <= 0) return fail("--interval must be positive");
  if (opt.drain_ms < 0) return fail("--drain must be non-negative");
  if (opt.loss < 0.0 || opt.loss > 1.0) {
    return fail("--loss must be a probability in [0, 1]");
  }
  if (opt.control_loss < 0.0 || opt.control_loss > 1.0) {
    return fail("--control-loss must be a probability in [0, 1]");
  }
  if (opt.lambda < 0.0) return fail("--lambda must be non-negative");
  if (opt.lossy_rate < 0.0 || opt.lossy_rate > 1.0) {
    return fail("--lossy-rate must be a probability in [0, 1]");
  }
  if (opt.coordinate && opt.buffer_bytes == 0 && opt.buffer_count == 0) {
    // Digest gossip, replica-aware eviction and shed handoffs all act on
    // budget *pressure*; with unlimited buffers nothing ever evicts, so the
    // run silently measures the uncoordinated protocol plus gossip traffic.
    return fail(
        "--coordinate requires a buffer budget (--buffer-bytes and/or "
        "--buffer-count): with unlimited buffers there is no pressure to "
        "coordinate");
  }
  if (opt.depth > 0 && opt.fanout == 0) {
    return fail("--fanout must be positive when --depth > 0");
  }
  if (opt.depth > 8) {
    // fanout^8 regions is already past anything the CLI can simulate; a
    // typo like --depth=100 would overflow the region count silently.
    return fail("--depth must be at most 8");
  }
  if (opt.flow && opt.window == 0) {
    return fail("--window must be positive: a zero window can never send");
  }
  if (opt.ack_ms <= 0) return fail("--ack-interval must be positive");
  if (opt.adaptive) {
    if (opt.min_window == 0) {
      return fail("--min-window must be positive: a zero window never sends");
    }
    std::size_t ceiling = opt.max_window != 0 ? opt.max_window : opt.window;
    if (opt.min_window > ceiling) {
      return fail(
          "--min-window must not exceed the AIMD ceiling (--max-window, or "
          "--window when --max-window is 0)");
    }
  }
  return true;
}

/// Build the self-describing PolicySpec from the per-policy knobs.
buffer::PolicySpec spec_from_options(buffer::PolicyKind kind,
                                     const Options& opt) {
  switch (kind) {
    case buffer::PolicyKind::kTwoPhase:
      return buffer::TwoPhaseParams{Duration::millis(opt.t_ms), opt.c};
    case buffer::PolicyKind::kFixedTime:
      return buffer::FixedTimeParams{Duration::millis(opt.ttl_ms)};
    case buffer::PolicyKind::kBufferEverything:
      return buffer::BufferEverythingParams{};
    case buffer::PolicyKind::kHashBased:
      return buffer::HashBasedParams{opt.hash_k,
                                     Duration::millis(opt.grace_ms)};
    case buffer::PolicyKind::kStability: return buffer::StabilityParams{};
  }
  return buffer::TwoPhaseParams{};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    print_usage();
    return 2;
  }
  if (opt.help) {
    print_usage();
    return 0;
  }
  if (!validate(opt)) return 2;
  buffer::PolicyKind kind;
  if (!buffer::kind_from_name(opt.policy, kind)) {
    std::fprintf(stderr, "unknown policy '%s'\n", opt.policy.c_str());
    print_usage();
    return 2;
  }

  harness::ClusterConfig cc;
  cc.region_sizes = opt.regions;
  if (opt.depth > 0) {
    // Complete fanout-ary region tree, BFS-numbered like run_makespan_point:
    // region 0 is the root, children of k are k*fanout+1 .. k*fanout+fanout.
    // Every region takes the size of the first --regions entry.
    std::size_t regions = 0, level = 1;
    for (std::size_t d = 0; d <= opt.depth; ++d) {
      regions += level;
      level *= opt.fanout;
    }
    cc.region_sizes.assign(regions, opt.regions[0]);
    cc.parents.resize(regions);
    cc.parents[0] = 0;
    for (std::size_t r = 1; r < regions; ++r) {
      cc.parents[r] = static_cast<RegionId>((r - 1) / opt.fanout);
    }
  }
  cc.protocol.hierarchy.enabled = opt.hierarchy;
  cc.sub_shard_members = opt.sub_shard;
  cc.data_loss = opt.loss;
  cc.control_loss = opt.control_loss;
  cc.seed = opt.seed;
  cc.policy = spec_from_options(kind, opt);
  cc.protocol.buffer_budget =
      buffer::BufferBudget{opt.buffer_bytes, opt.buffer_count};
  cc.protocol.buffer_coordination.enabled = opt.coordinate;
  cc.protocol.buffer_coordination.digest_interval =
      Duration::millis(opt.digest_ms);
  cc.protocol.buffer_coordination.redundancy_threshold = opt.redundancy;
  cc.protocol.buffer_coordination.shed_sole_copies = !opt.no_shed;
  cc.protocol.flow.enabled = opt.flow;
  cc.protocol.flow.window_size = static_cast<std::uint32_t>(opt.window);
  cc.protocol.flow.target_budget_bytes = opt.target_budget;
  cc.protocol.flow.ack_interval = Duration::millis(opt.ack_ms);
  cc.protocol.flow.backpressure = !opt.no_backpressure;
  cc.protocol.flow.adaptive = opt.adaptive;
  cc.protocol.flow.min_window = static_cast<std::uint32_t>(opt.min_window);
  cc.protocol.flow.max_window = static_cast<std::uint32_t>(opt.max_window);
  cc.protocol.flow.piggyback = opt.piggyback;
  cc.protocol.flow.stall_backoff = opt.stall_backoff;
  cc.protocol.lambda = opt.lambda;
  cc.protocol.lookup = kind == buffer::PolicyKind::kHashBased
                           ? BuffererLookup::kHashDirect
                           : BuffererLookup::kRandomized;
  if (kind == buffer::PolicyKind::kHashBased) {
    cc.protocol.hash_k =
        static_cast<std::uint32_t>(std::get<buffer::HashBasedParams>(cc.policy).k);
  }

  // Run header: the chosen spec and budget, so every run is self-describing.
  std::printf("policy: %s\n", buffer::describe(cc.policy).c_str());
  if (cc.protocol.buffer_budget.unlimited()) {
    std::printf("budget: unlimited\n");
  } else {
    std::printf("budget: %zu bytes, %zu msgs per member (0 = unlimited)\n",
                cc.protocol.buffer_budget.max_bytes,
                cc.protocol.buffer_budget.max_count);
  }
  std::printf("coordination: %s\n",
              buffer::describe(cc.protocol.buffer_coordination).c_str());
  if (opt.flow) {
    std::printf("flow: window %zu frames, target budget %zu B (0 = frames "
                "only), ack every %lld ms, backpressure %s\n",
                opt.window, opt.target_budget,
                static_cast<long long>(opt.ack_ms),
                opt.no_backpressure ? "off" : "on");
    if (opt.adaptive) {
      std::printf("flow: AIMD window [%zu, %zu], cursor piggyback %s\n",
                  opt.min_window,
                  opt.max_window != 0 ? opt.max_window : opt.window,
                  opt.piggyback ? "on" : "off");
    } else if (opt.piggyback) {
      std::printf("flow: cursor piggyback on\n");
    }
  } else {
    std::printf("flow: off\n");
  }
  if (opt.hierarchy || opt.depth > 0) {
    std::printf("hierarchy: repair %s, %zu regions x %zu members%s\n",
                opt.hierarchy ? "on" : "off", cc.region_sizes.size(),
                cc.region_sizes[0],
                opt.depth > 0 ? " (complete tree)" : "");
  }

  // Assemble the fault timeline: an optional spec file plus the t=0
  // shorthands. --partition / --lossy-members are synthesized as one-line
  // specs so they share the script grammar (and its member-range parser).
  std::vector<harness::FaultScript> faults;
  {
    std::string err;
    if (!opt.fault_script.empty()) {
      auto parsed = harness::FaultScript::parse_file(opt.fault_script, &err);
      if (!parsed) {
        std::fprintf(stderr, "--fault-script: %s\n", err.c_str());
        return 2;
      }
      faults.push_back(std::move(*parsed));
    }
    if (!opt.partition.empty()) {
      auto parsed = harness::FaultScript::parse(
          "at=0 event=partition groups=" + opt.partition, &err);
      if (!parsed) {
        std::fprintf(stderr, "--partition: %s\n", err.c_str());
        return 2;
      }
      faults.push_back(std::move(*parsed));
    }
    if (!opt.lossy_members.empty()) {
      auto parsed = harness::FaultScript::parse(
          "at=0 event=link-loss members=" + opt.lossy_members +
              " rate=" + std::to_string(opt.lossy_rate),
          &err);
      if (!parsed) {
        std::fprintf(stderr, "--lossy-members: %s\n", err.c_str());
        return 2;
      }
      faults.push_back(std::move(*parsed));
    }
  }

  harness::Cluster cluster(cc);

  std::size_t fault_events = 0;
  for (const harness::FaultScript& script : faults) {
    try {
      script.schedule_on(cluster);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "fault script: %s\n", e.what());
      return 2;
    }
    fault_events += script.size();
  }
  if (fault_events != 0) {
    std::printf("faults: %zu scripted event%s\n", fault_events,
                fault_events == 1 ? "" : "s");
  }

  for (std::size_t i = 0; i < opt.messages; ++i) {
    cluster.schedule_script(
        TimePoint::zero() +
            Duration::millis(opt.interval_ms) * static_cast<std::int64_t>(i),
        [&cluster, &opt] {
          cluster.endpoint(0).multicast(
              std::vector<std::uint8_t>(opt.payload, 0x42));
        });
  }
  Duration total = Duration::millis(opt.interval_ms) *
                       static_cast<std::int64_t>(opt.messages) +
                   Duration::millis(opt.drain_ms);
  cluster.run_for(total);

  std::size_t undelivered = 0;
  for (std::uint64_t s = 1; s <= opt.messages; ++s) {
    if (!cluster.all_received(MessageId{0, s})) ++undelivered;
  }
  std::size_t peak = 0, peak_bytes = 0;
  std::uint64_t evictions = 0, sheds = 0, rejected = 0;
  for (MemberId m = 0; m < cluster.size(); ++m) {
    const buffer::BufferStats& bs = cluster.endpoint(m).buffer().stats();
    peak = std::max(peak, bs.peak_count);
    peak_bytes = std::max(peak_bytes, bs.peak_bytes);
    evictions += bs.evicted;
    sheds += bs.shed;
    rejected += bs.rejected;
  }
  std::vector<double> rec_ms;
  for (Duration d : cluster.metrics().recovery_latencies()) {
    rec_ms.push_back(d.ms());
  }
  analysis::Summary rec = analysis::summarize(rec_ms);
  const auto& c = cluster.metrics().counters();
  const auto& ts = cluster.network().stats();

  analysis::Table table({"metric", "value"});
  table.add_row({"members", analysis::Table::num(
                                static_cast<std::uint64_t>(cluster.size()))});
  table.add_row({"messages", analysis::Table::num(
                                 static_cast<std::uint64_t>(opt.messages))});
  table.add_row({"policy", opt.policy});
  table.add_row({"fully delivered",
                 analysis::Table::num(
                     static_cast<std::uint64_t>(opt.messages - undelivered))});
  table.add_row({"losses detected", analysis::Table::num(c.losses_detected)});
  table.add_row({"recoveries", analysis::Table::num(c.recoveries)});
  table.add_row({"mean recovery ms", analysis::Table::num(rec.mean, 2)});
  table.add_row({"p99 recovery ms", analysis::Table::num(rec.p99, 2)});
  table.add_row({"local requests", analysis::Table::num(c.local_requests_sent)});
  table.add_row({"remote requests",
                 analysis::Table::num(c.remote_requests_sent)});
  table.add_row({"repairs", analysis::Table::num(c.repairs_sent)});
  table.add_row({"regional multicasts",
                 analysis::Table::num(c.regional_multicasts)});
  table.add_row({"searches", analysis::Table::num(c.searches_started)});
  table.add_row({"peak buffer/member",
                 analysis::Table::num(static_cast<std::uint64_t>(peak))});
  table.add_row({"peak buffer B/member",
                 analysis::Table::num(static_cast<std::uint64_t>(peak_bytes))});
  table.add_row({"evictions", analysis::Table::num(evictions)});
  table.add_row({"shed handoffs", analysis::Table::num(sheds)});
  table.add_row({"rejected stores", analysis::Table::num(rejected)});
  if (opt.flow) {
    table.add_row({"deferred sends", analysis::Table::num(c.sends_deferred)});
    table.add_row({"credit acks", analysis::Table::num(c.credit_acks_sent)});
    table.add_row({"suppressed acks",
                   analysis::Table::num(c.credit_acks_suppressed)});
    table.add_row({"stall remulticasts",
                   analysis::Table::num(c.flow_stall_remcasts)});
    table.add_row({"stall releases",
                   analysis::Table::num(c.flow_stall_releases)});
  }
  table.add_row({"residual buffered msgs",
                 analysis::Table::num(
                     static_cast<std::uint64_t>(cluster.total_buffered()))});
  if (ts.severed != 0) {
    table.add_row({"severed packets", analysis::Table::num(ts.severed)});
  }
  table.add_row({"wire bytes", analysis::Table::num(ts.bytes_sent)});

  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return undelivered == 0 ? 0 : 1;
}
