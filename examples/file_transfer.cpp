// Multicast file transfer — the workload RMTP was built for (paper §1).
//
// A 400-chunk "file" streams to three regions. We run it twice: once with
// an RMTP-style repair server that archives every chunk, once with the
// paper's two-phase buffering. Same loss, same seeds; compare peak and
// residual buffer state.
//
//   $ ./file_transfer
#include <cstdio>

#include "harness/cluster.h"

using namespace rrmp;

namespace {

struct RunStats {
  bool complete = true;
  std::size_t peak_per_member = 0;
  std::size_t residual_msgs = 0;
  double mean_recovery_ms = 0;
};

RunStats transfer(buffer::PolicyKind policy, const char* label) {
  harness::ClusterConfig config;
  config.region_sizes = {15, 15, 15};
  config.policy = buffer::default_spec(policy);
  config.data_loss = 0.08;
  config.seed = 424242;
  harness::Cluster cluster(config);

  constexpr int kChunks = 400;
  constexpr std::size_t kChunkBytes = 512;
  // Send a chunk every 2 ms — a 200 KB file at ~256 KB/s.
  for (int i = 0; i < kChunks; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + Duration::millis(2) * i, [&cluster] {
          cluster.endpoint(0).multicast(
              std::vector<std::uint8_t>(kChunkBytes, 0xF1));
        });
  }
  cluster.run_for(Duration::millis(2 * kChunks) + Duration::seconds(1));

  RunStats out;
  for (int seq = 1; seq <= kChunks; ++seq) {
    if (!cluster.all_received(MessageId{0, static_cast<std::uint64_t>(seq)})) {
      out.complete = false;
    }
  }
  for (MemberId m = 0; m < cluster.size(); ++m) {
    out.peak_per_member = std::max(
        out.peak_per_member, cluster.endpoint(m).buffer().stats().peak_count);
  }
  out.residual_msgs = cluster.total_buffered();
  double total = 0;
  for (Duration d : cluster.metrics().recovery_latencies()) total += d.ms();
  std::size_t n = cluster.metrics().recovery_latencies().size();
  out.mean_recovery_ms = n ? total / static_cast<double>(n) : 0.0;

  std::printf(
      "%-18s file complete everywhere: %-3s  peak buffer/member: %4zu chunks"
      "  residual: %5zu chunks  mean recovery: %.1f ms\n",
      label, out.complete ? "yes" : "NO", out.peak_per_member,
      out.residual_msgs, out.mean_recovery_ms);
  return out;
}

}  // namespace

int main() {
  std::printf("transferring a 400-chunk file to 45 members in 3 regions "
              "(8%% loss)...\n\n");
  RunStats everything =
      transfer(buffer::PolicyKind::kBufferEverything, "repair-server:");
  RunStats two_phase = transfer(buffer::PolicyKind::kTwoPhase, "two-phase:");

  std::printf("\nresidual buffer state: two-phase holds %.1f%% of the "
              "repair-server archive\n",
              100.0 * static_cast<double>(two_phase.residual_msgs) /
                  static_cast<double>(everything.residual_msgs));
  std::printf("(expected ~C=6 copies per chunk per 15-member region; the "
              "saving scales with region size —\n the paper reports 100x at "
              "n=1000. 'Buffering the entire file in secondary storage ... "
              "could\n become impractically large' — paper Sec. 1)\n");
  return (everything.complete && two_phase.complete) ? 0 : 1;
}
