// Quickstart: a 20-member group in two regions, one lossy multicast, and
// the two-phase buffer doing its job.
//
//   $ ./quickstart
//
// Walks through the public API: build a cluster, multicast, watch recovery
// converge, inspect who ended up buffering what.
#include <cstdio>

#include "harness/cluster.h"

using namespace rrmp;

int main() {
  // A root region of 12 members (the sender lives here) and a downstream
  // region of 8, RTT 10 ms inside a region, 50 ms between regions.
  harness::ClusterConfig config;
  config.region_sizes = {12, 8};
  config.data_loss = 0.35;  // initial IP multicast drops 35% per receiver
  config.seed = 2002;       // DSN 2002

  harness::Cluster cluster(config);

  // Member 0 multicasts five messages.
  std::vector<MessageId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(cluster.endpoint(0).multicast(
        {std::uint8_t(i), 0xCA, 0xFE}));
  }
  std::printf("sent %zu messages into a %zu-member group (35%% loss)\n",
              ids.size(), cluster.size());

  // Let randomized error recovery run.
  cluster.run_for(Duration::seconds(2));

  for (const MessageId& id : ids) {
    std::printf("message %u:%llu  received by %zu/%zu  buffered by %zu "
                "(long-term %zu)\n",
                id.source, static_cast<unsigned long long>(id.seq),
                cluster.count_received(id), cluster.size(),
                cluster.count_buffered(id), cluster.count_long_term(id));
  }

  const auto& c = cluster.metrics().counters();
  std::printf("\nrecovery activity: %llu losses detected, %llu local + %llu "
              "remote requests, %llu repairs, %llu regional multicasts\n",
              static_cast<unsigned long long>(c.losses_detected),
              static_cast<unsigned long long>(c.local_requests_sent),
              static_cast<unsigned long long>(c.remote_requests_sent),
              static_cast<unsigned long long>(c.repairs_sent),
              static_cast<unsigned long long>(c.regional_multicasts));

  bool all = true;
  for (const MessageId& id : ids) all = all && cluster.all_received(id);
  std::printf("all messages delivered everywhere: %s\n", all ? "yes" : "NO");
  return all ? 0 : 1;
}
