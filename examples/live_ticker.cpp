// Long-lived stream with churn — the setting where fixed buffering breaks.
//
// A market-data style ticker multicasts continuously for 10 simulated
// seconds while members leave (gracefully, with long-term buffer handoff)
// and crash. Demonstrates:
//   - memory stays bounded under an unbounded stream (unlike an archive),
//   - graceful leavers hand their long-term buffers to survivors,
//   - late detectors still recover old ticks from long-term bufferers.
//
//   $ ./live_ticker
#include <cstdio>

#include "harness/cluster.h"

using namespace rrmp;

int main() {
  harness::ClusterConfig config;
  config.region_sizes = {24};
  config.data_loss = 0.10;
  config.seed = 7777;
  std::get<buffer::TwoPhaseParams>(config.policy).long_term_ttl =
      Duration::seconds(2);
  harness::Cluster cluster(config);

  constexpr int kTicks = 1000;           // one tick per 10 ms: 10 s stream
  const Duration kTickInterval = Duration::millis(10);

  for (int i = 0; i < kTicks; ++i) {
    cluster.schedule_script(
        TimePoint::zero() + kTickInterval * i, [&cluster] {
          cluster.endpoint(0).multicast(std::vector<std::uint8_t>(64, 0x11));
        });
  }

  // Churn: members leave or crash during the stream (never the sender).
  RandomEngine churn_rng(55);
  std::vector<MemberId> leavers = {5, 9, 13, 17, 21};
  for (std::size_t i = 0; i < leavers.size(); ++i) {
    MemberId victim = leavers[i];
    bool graceful = (i % 2 == 0);
    cluster.schedule_script(
        TimePoint::zero() + Duration::seconds(1) * static_cast<std::int64_t>(i + 1),
        [&cluster, victim, graceful] {
          if (graceful) {
            cluster.leave(victim);
          } else {
            cluster.crash(victim);
          }
        });
  }

  // Sample total buffered messages once a second.
  std::printf("t(s)  buffered-total  alive  handoffs\n");
  for (int s = 1; s <= 11; ++s) {
    cluster.run_for(Duration::seconds(1));
    std::printf("%3d   %14zu  %5zu  %8llu\n", s, cluster.total_buffered(),
                cluster.directory().alive_count(),
                static_cast<unsigned long long>(
                    cluster.metrics().counters().handoffs));
  }

  // Everything the survivors know about must have arrived.
  std::size_t missing = 0;
  for (int seq = 1; seq <= kTicks; ++seq) {
    if (!cluster.all_received(MessageId{0, static_cast<std::uint64_t>(seq)})) {
      ++missing;
    }
  }
  const auto& c = cluster.metrics().counters();
  std::printf("\n%d ticks streamed; %zu not yet everywhere; "
              "%llu losses repaired; %llu handoff batches\n",
              kTicks, missing,
              static_cast<unsigned long long>(c.recoveries),
              static_cast<unsigned long long>(c.handoffs));
  std::printf("buffer stays ~bounded because idle ticks are kept by ~C "
              "members for long_term_ttl=2s, then dropped.\n");
  return missing == 0 ? 0 : 1;
}
