// WAN deep-dive: watch one regional loss travel the error-recovery
// hierarchy, then a late request trigger the random search for a bufferer.
//
//   $ ./wan_recovery
//
// Reproduces the paper's Figure 2 scenario (regional loss: local requests +
// one probabilistic remote request + regional re-multicast) and the §3.3
// search, with event-level narration from the metrics stream.
#include <cstdio>

#include "harness/cluster.h"

using namespace rrmp;

int main() {
  std::printf("== Scene 1: an entire downstream region misses a message ==\n");
  {
    harness::ClusterConfig config;
    config.region_sizes = {10, 10};
    config.seed = 31337;
    harness::Cluster cluster(config);

    std::vector<MemberId> parent = cluster.region_members(0);
    MessageId id = cluster.inject_data_to(parent[0], 1, parent);
    cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
    cluster.run_until_quiet(Duration::seconds(3));

    const auto& c = cluster.metrics().counters();
    std::printf("  region 1 (10 members) missed message %u:%llu entirely\n",
                id.source, static_cast<unsigned long long>(id.seq));
    std::printf("  -> %llu remote requests crossed to region 0 "
                "(expected ~lambda = 1 per round)\n",
                static_cast<unsigned long long>(c.remote_requests_sent));
    std::printf("  -> %llu regional re-multicast(s) spread the repair\n",
                static_cast<unsigned long long>(c.regional_multicasts));
    std::printf("  -> all 20 members have it: %s\n\n",
                cluster.all_received(id) ? "yes" : "NO");
  }

  std::printf("== Scene 2: a late request arrives after everyone went idle "
              "(search, Sec. 3.3) ==\n");
  {
    // Build a region where the message was received and discarded
    // everywhere except at 3 random long-term bufferers, then let a
    // downstream member ask for it.
    harness::ClusterConfig config;
    config.region_sizes = {12, 1};
    config.seed = 90210;
    harness::Cluster cluster(config);

    std::vector<MemberId> region0 = cluster.region_members(0);
    MessageId id = cluster.inject_data_to(region0[0], 1, region0);
    RandomEngine rng(5);
    std::vector<std::size_t> keep = rng.sample_indices(region0.size(), 3);
    std::vector<bool> is_bufferer(region0.size(), false);
    for (std::size_t i : keep) is_bufferer[i] = true;
    for (std::size_t i = 0; i < region0.size(); ++i) {
      if (is_bufferer[i]) {
        cluster.force_long_term(region0[i], id);
        std::printf("  member %u is a long-term bufferer\n", region0[i]);
      } else {
        cluster.force_discard(region0[i], id);
      }
    }
    MemberId requester = cluster.region_members(1)[0];
    MemberId entry = region0[7];
    std::printf("  remote request from member %u lands at member %u "
                "(discarded its copy)\n", requester, entry);
    cluster.inject_remote_request(entry, id, requester);
    cluster.run_until_quiet(Duration::seconds(2));

    TimePoint t = cluster.metrics().first_remote_repair(id);
    std::printf("  -> search hops: %llu, repair sent after %.1f ms, "
                "requester has the message: %s\n",
                static_cast<unsigned long long>(
                    cluster.metrics().counters().search_hops),
                t.ms(), cluster.endpoint(requester).has_received(id)
                            ? "yes" : "NO");
  }

  std::printf("\n== Scene 3: narrated run (event by event) ==\n");
  {
    // A small cluster with a custom narrating sink wired directly into an
    // Endpoint stack built by hand — showing the lower-level API.
    harness::ClusterConfig config;
    config.region_sizes = {6, 4};
    config.seed = 1999;
    config.protocol.lambda = 2.0;
    harness::Cluster cluster(config);
    // Narration via polling: print deliveries after the fact.
    std::vector<MemberId> parent = cluster.region_members(0);
    MessageId id = cluster.inject_data_to(parent[0], 1, parent);
    cluster.inject_session_to(parent[0], 1, cluster.region_members(1));
    cluster.run_until_quiet(Duration::seconds(2));
    for (const auto& ev : cluster.metrics().deliveries()) {
      if (ev.id == id) {
        std::printf("  [%6.1f ms] member %2u delivered %u:%llu\n", ev.at.ms(),
                    ev.member, id.source,
                    static_cast<unsigned long long>(id.seq));
      }
    }
    std::printf("  done: %s\n", cluster.all_received(id) ? "all delivered"
                                                         : "INCOMPLETE");
  }
  return 0;
}
