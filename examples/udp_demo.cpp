// Real sockets: the same protocol endpoints on loopback UDP datagrams.
//
//   $ ./udp_demo
//
// Eight members (two regions) bind real UDP sockets on 127.0.0.1. The
// sender's initial fan-out drops 30% of datagrams; randomized recovery
// repairs the rest with actual packets. Topology latency (RTT 4 ms inside
// a region, 10 ms one-way between regions) is reproduced with delayed
// sends, so the protocol timing matches the simulator's.
#include <cstdio>

#include "harness/udp_runtime.h"

using namespace rrmp;

int main() {
  net::Topology topo = net::make_hierarchy({5, 3}, Duration::millis(4),
                                           Duration::millis(10));
  harness::UdpRuntimeConfig config;
  config.base_port = 39000;
  config.seed = 99;
  config.data_loss = 0.30;
  config.protocol.session_interval = Duration::millis(20);
  std::get<buffer::TwoPhaseParams>(config.policy).idle_threshold =
      Duration::millis(16);

  std::unique_ptr<harness::UdpRuntime> rt;
  try {
    rt = std::make_unique<harness::UdpRuntime>(topo, config);
  } catch (const std::exception& e) {
    std::printf("cannot bind UDP sockets (%s) — nothing to demo here\n",
                e.what());
    return 0;
  }

  std::printf("8 members on 127.0.0.1:%u-%u, 30%% initial loss\n",
              config.base_port, config.base_port + 7);

  std::vector<MessageId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(rt->endpoint(0).multicast(
        std::vector<std::uint8_t>(128, static_cast<std::uint8_t>(i))));
  }
  rt->run_for(Duration::millis(1500));  // wall-clock

  std::size_t complete = 0;
  for (const MessageId& id : ids) {
    if (rt->all_received(id)) ++complete;
  }
  const auto& c = rt->metrics().counters();
  std::printf("delivered everywhere: %zu/%zu messages\n", complete, ids.size());
  std::printf("datagrams: %llu sent / %llu received; %llu losses detected, "
              "%llu repairs\n",
              static_cast<unsigned long long>(rt->bus().datagrams_sent()),
              static_cast<unsigned long long>(rt->bus().datagrams_received()),
              static_cast<unsigned long long>(c.losses_detected),
              static_cast<unsigned long long>(c.repairs_sent));
  return complete == ids.size() ? 0 : 1;
}
