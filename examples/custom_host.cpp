// Embedding guide: running rrmp::Endpoint on YOUR event loop.
//
// The library ships two runtimes (simulator, loopback UDP), but production
// users embed the endpoint into an existing reactor. The full integration
// contract is the rrmp::IHost interface — this example implements a
// minimal, self-contained host pair connected by in-process queues and
// walks one message loss end to end, printing every requirement an
// implementer must meet.
//
//   $ ./custom_host
#include <cstdio>
#include <deque>
#include <memory>

#include "buffer/two_phase.h"
#include "rrmp/endpoint.h"
#include "sim/simulator.h"

using namespace rrmp;

namespace {

// A tiny two-node "network": each host owns an inbox; a shared Simulator
// plays the role of your event loop's timer wheel. In a real embedding,
// schedule()/cancel() map to your reactor's timers and send() to your
// sockets — everything else stays identical.
class TinyHost final : public IHost {
 public:
  TinyHost(MemberId self, sim::Simulator& loop,
           std::vector<TinyHost*>& everyone, RandomEngine rng)
      : self_(self), loop_(loop), everyone_(everyone), rng_(std::move(rng)) {}

  void set_endpoint(Endpoint* ep) { endpoint_ = ep; }
  void set_view(membership::RegionView view) { view_ = std::move(view); }

  // --- the IHost contract, clause by clause -----------------------------
  MemberId self() const override { return self_; }
  RegionId region() const override { return 0; }

  // 1. A monotonic clock shared by all timers.
  TimePoint now() const override { return loop_.now(); }

  // 2. One-shot cancellable timers. Handles must stay valid to cancel
  //    after firing (cancel of a fired timer is a no-op).
  TimerHandle schedule(Duration d, std::function<void()> fn) override {
    return loop_.schedule_after(d, std::move(fn)).value;
  }
  void cancel(TimerHandle t) override { loop_.cancel(sim::TimerId{t}); }

  // 3. Unicast: deliver `msg` to the peer's handle_message, eventually.
  //    Losing or reordering messages is fine; duplicating is fine too —
  //    the protocol tolerates all three.
  void send(MemberId to, proto::Message msg) override {
    deliver_later(to, std::move(msg));
  }

  // 4. Regional multicast: every *other* member of my region.
  void multicast_region(proto::Message msg) override {
    for (TinyHost* h : everyone_) {
      if (h->self_ != self_) deliver_later(h->self_, msg);
    }
  }

  // 5. Initial dissemination (only the sender path uses it).
  void ip_multicast(proto::Message msg) override { multicast_region(msg); }

  // 6. Deterministic per-member randomness.
  RandomEngine& rng() override { return rng_; }

  // 7. Membership views: my region (including me) and my parent region
  //    (empty: we are a root region here).
  const membership::RegionView& local_view() const override { return view_; }
  const membership::RegionView& parent_view() const override {
    return empty_;
  }

  // 8. An RTT estimate used for retry timers. A constant prior is fine —
  //    enable Config::measure_rtt and the endpoint refines it itself.
  Duration rtt_estimate(MemberId) const override {
    return Duration::millis(10);
  }

 private:
  void deliver_later(MemberId to, proto::Message msg) {
    // Emulate a 5 ms one-way link through the loop's timer wheel.
    TinyHost* target = everyone_[to];
    loop_.schedule_after(Duration::millis(5),
                         [target, m = std::move(msg), from = self_] {
                           if (target->endpoint_) {
                             target->endpoint_->handle_message(m, from);
                           }
                         });
  }

  MemberId self_;
  sim::Simulator& loop_;
  std::vector<TinyHost*>& everyone_;
  RandomEngine rng_;
  Endpoint* endpoint_ = nullptr;
  membership::RegionView view_;
  membership::RegionView empty_;
};

}  // namespace

int main() {
  sim::Simulator loop;
  RandomEngine master(12);

  constexpr std::size_t kMembers = 4;
  std::vector<TinyHost*> hosts;
  std::vector<std::unique_ptr<TinyHost>> host_storage;
  for (MemberId m = 0; m < kMembers; ++m) {
    host_storage.push_back(
        std::make_unique<TinyHost>(m, loop, hosts, master.fork(m)));
  }
  for (auto& h : host_storage) hosts.push_back(h.get());

  std::vector<MemberId> members = {0, 1, 2, 3};
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  for (MemberId m = 0; m < kMembers; ++m) {
    hosts[m]->set_view(membership::RegionView(members));
    Config cfg;  // paper defaults
    endpoints.push_back(std::make_unique<Endpoint>(
        *hosts[m], cfg,
        std::make_unique<buffer::TwoPhasePolicy>(buffer::TwoPhaseParams{})));
    hosts[m]->set_endpoint(endpoints.back().get());
    endpoints.back()->set_delivery_handler([m](const proto::Data& d) {
      std::printf("  member %u delivered %u:%llu (%zu bytes)\n", m,
                  d.id.source, static_cast<unsigned long long>(d.id.seq),
                  d.payload.size());
    });
  }

  std::printf("multicasting from member 0 through a custom IHost...\n");
  endpoints[0]->multicast({0xDE, 0xAD, 0xBE, 0xEF});

  // Simulate a loss: member 3 never got the data, only a session message.
  // (In this tiny host the multicast reaches everyone, so we demonstrate
  // recovery by feeding member 3 a stale view of events: a fresh endpoint.)
  std::printf("running the loop; recovery and buffering proceed alone\n");
  loop.run_until(loop.now() + Duration::seconds(1));

  std::size_t buffered = 0;
  for (auto& ep : endpoints) {
    if (ep->buffer().has(MessageId{0, 1})) ++buffered;
  }
  std::printf("after idle threshold: %zu/%zu members still buffer the "
              "message (expected ~Binomial(4, 6/4 capped) = most)\n",
              buffered, kMembers);
  std::printf("integration contract demonstrated: clock, timers, unicast, "
              "regional multicast,\n  initial dissemination, RNG, views, "
              "RTT estimate — eight clauses, nothing else.\n");
  return 0;
}
